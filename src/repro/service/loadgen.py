"""Closed-loop load generator for the simulation service.

Drives a running server (or an in-process one) with a configurable
client mix and records served-request throughput in
``BENCH_service_throughput.json`` — the serving counterpart of
``repro.bench``'s engine-throughput document, in the same schema-2
style (header with ``schema`` / ``python`` / ``platform`` /
``cpu_count`` / ``revision``; ``--check`` refuses cross-schema
comparisons).

The run has two phases, each a closed loop (every client issues its
next request the moment the previous response lands):

* ``cold`` — every request carries a unique content key (the access
  function's exponent is perturbed per request), so every request is
  computed: this measures the service's raw compute-bound ceiling
  against a cold cache.
* ``hot`` — a ``hot_ratio`` fraction of requests (default 0.9) draws
  from a small fixed hot-key set, the rest stay unique: this measures
  the cache-accelerated serving rate.  ``hot_vs_cold_speedup`` is the
  ratio of the two phases' requests/s — the number the ROADMAP's
  "heavy traffic" goal turns on.

Request streams are seeded (`random.Random`), so two runs against
equivalent servers issue the identical request sequences.  A 429 from
the server's backpressure is not an error: the client honours
``Retry-After`` and retries, counting the rejection.  Every non-2xx
response is parsed through the unified error envelope
(``{"error": {"code", "message", "retry_after_s"}}``).

Every phase document carries the latency block: ``latency_samples``,
nearest-rank ``latency_p50_s`` / ``latency_p95_s`` / ``latency_p99_s``
and a compact log-spaced ``latency_histogram``.

:func:`run_shard_bench` is the sharded-tier driver (``loadgen
--open-loop``, writing ``BENCH_service_shard.json``): closed-loop
scaling rows (N shards vs 1 over the same working set), then
**open-loop** phases — Poisson arrivals at a fixed offered rate, with
latency measured from each request's *scheduled* arrival so queueing
delay is charged to the tier, not silently absorbed by the arrival
process — fault-free and with a shard killed mid-phase under the
supervisor's watch.  Open-loop percentiles are suppressed below
:data:`MIN_OPEN_LOOP_SAMPLES` samples.

:func:`run_job_bench` is the jobs-mode driver (``loadgen --job-mode``):
it measures interactive ``/v1/run`` p50 latency with and without a
background sweep job competing for the worker pool, the job's
time-to-complete, and — after stopping the job runner mid-job and
re-adopting on a fresh service over the same jobs directory — whether
the resumed job's result document is identical to an uninterrupted
run's.

:func:`run_plan_bench` is the planner driver (``loadgen --plan-mode``,
writing ``BENCH_service_plan.json``): it checks ``POST /v1/plan``
prediction accuracy against measured charged cost over the bench
sort/FFT matrix (interior *and* extrapolated guest widths), then runs
the adversarial cheap/enormous mix — a lane of cheap simulations
sharing the service with clients submitting enormous ones — under flat
``queue_limit`` admission and under cost-aware admission.  The
documented SLO (:data:`PLAN_P99_BOUND_X`): cost-aware admission keeps
the cheap lane's p99 within 3x the uniform-load p99 by shedding the
enormous requests at the door, while flat admission lets them occupy
the queue slots and demonstrably does not.
"""

from __future__ import annotations

import http.client
import json
import math
import os
import platform
import random
import socket
import threading
import time
import urllib.parse
from typing import Any

__all__ = [
    "SERVICE_BENCH_SCHEMA",
    "SHARD_BENCH_SCHEMA",
    "PLAN_BENCH_SCHEMA",
    "MIN_OPEN_LOOP_SAMPLES",
    "PLAN_P99_BOUND_X",
    "run_loadgen",
    "run_job_bench",
    "run_shard_bench",
    "run_plan_bench",
    "check_service_against",
    "check_shard_against",
    "check_plan_against",
    "write_service_bench",
]

#: service bench document schema (styled after ``repro.bench``'s
#: schema 2: same provenance header, phases instead of workloads)
SERVICE_BENCH_SCHEMA = 2

#: sharded-tier bench document schema (``BENCH_service_shard.json``):
#: scaling rows + open-loop tail-latency phases + fault-injection run
SHARD_BENCH_SCHEMA = 1

#: planner bench document schema (``BENCH_service_plan.json``):
#: prediction-accuracy rows + the adversarial admission comparison
PLAN_BENCH_SCHEMA = 1

#: engines in the request mix (every family; ``direct`` keeps the guest
#: reference in the traffic)
_MIX_ENGINES = ("hmm", "bt", "brent", "direct")

#: programs in the request mix (delivery-heavy, cheap to build at v=16)
_MIX_PROGRAMS = ("sort", "fft-rec")


#: guest width of the mix (big enough that computing a request costs
#: milliseconds — the hot/cold contrast must measure caching, not HTTP)
_MIX_V = 64


def _hot_set(count: int) -> list[dict[str, Any]]:
    """The fixed hot-key request set: ``count`` distinct documents."""
    hot = []
    for i in range(count):
        hot.append({
            "engine": _MIX_ENGINES[i % len(_MIX_ENGINES)],
            "program": _MIX_PROGRAMS[(i // len(_MIX_ENGINES)) % len(_MIX_PROGRAMS)],
            "v": _MIX_V,
            "mu": 8,
            "f": f"x^0.{50 + i}",
            "trace": "counters",
        })
    return hot


def _cold_request(index: int) -> dict[str, Any]:
    """A request whose content key no other request shares.

    The access-function exponent is perturbed per index —
    ``x^0.100001``, ``x^0.100002``, ... — so every cold request hashes
    to a fresh :func:`~repro.resilience.ledger.cell_key` and must be
    computed.
    """
    return {
        "engine": _MIX_ENGINES[index % len(_MIX_ENGINES)],
        "program": _MIX_PROGRAMS[index % len(_MIX_PROGRAMS)],
        "v": _MIX_V,
        "mu": 8,
        "f": f"x^0.{100001 + index}",
        "trace": "counters",
    }


class _Client(threading.Thread):
    """One closed-loop client: issue requests back-to-back, tally paths.

    Uses one persistent (keep-alive) HTTP/1.1 connection for its whole
    stream — per-request TCP setup would otherwise put a floor under
    the cache-hit serving rate and understate the hot/cold contrast.
    """

    def __init__(
        self,
        url: str,
        requests: list[dict[str, Any]],
        batch: int = 1,
    ):
        super().__init__(daemon=True)
        parsed = urllib.parse.urlsplit(url)
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.requests = requests
        self.batch = max(1, batch)
        self.served: dict[str, int] = {}
        self.rejected = 0
        self.unavailable_503 = 0
        self.errors = 0
        self.non_envelope_errors = 0
        self.failures: list[str] = []
        self.latencies: list[float] = []
        self._conn: http.client.HTTPConnection | None = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=120.0
            )
            self._conn.connect()
            # mirror the server's TCP_NODELAY: a request is also two
            # small writes (headers, JSON body), and Nagle + delayed
            # ACK would floor every round trip at tens of milliseconds
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def _reconnect(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _tally(self, response: dict[str, Any]) -> None:
        for item in response.get("results", [response]):
            served = item.get("served", "?")
            self.served[served] = self.served.get(served, 0) + 1

    def _issue(self, path: str, body: Any, t0: float | None = None) -> None:
        """Issue one request; ``t0`` overrides the latency clock's start.

        Open-loop workers pass the request's *scheduled arrival time* so
        the recorded latency includes any time the request spent waiting
        for a worker — the coordinated-omission-safe measurement.
        """
        payload = json.dumps(body).encode("utf-8")
        transport_failures = 0
        backoffs = 0
        if t0 is None:
            t0 = time.perf_counter()
        while True:
            try:
                conn = self._connect()
                conn.request(
                    "POST", path, body=payload,
                    headers={"Content-Type": "application/json"},
                )
                resp = conn.getresponse()
                raw = resp.read()
                status = resp.status
                retry_after = resp.headers.get("Retry-After")
            except (http.client.HTTPException, OSError) as exc:
                self._reconnect()
                transport_failures += 1
                if transport_failures > 3:
                    self.errors += 1
                    if len(self.failures) < 8:
                        self.failures.append(f"transport: {exc!r}")
                    return
                continue
            try:
                doc = json.loads(raw) if raw else {}
            except ValueError:
                doc = {}
            if status == 200:
                # latency includes any 429 backoff the request rode out
                # — it is the latency the client experienced
                self.latencies.append(time.perf_counter() - t0)
                self._tally(doc)
                return
            envelope = doc.get("error")
            if not isinstance(envelope, dict):  # non-envelope (proxy?) error
                self.non_envelope_errors += 1
                envelope = {
                    "code": "unknown",
                    "message": raw.decode("utf-8", "replace"),
                }
            if status in (429, 503) and backoffs < 100:
                # both are the service saying "come back shortly": 429
                # is admission backpressure, 503 is the router riding
                # out a dead shard until the supervisor respawns it.
                # The eventual success latency includes every backoff.
                backoffs += 1
                if status == 429:
                    self.rejected += 1
                else:
                    self.unavailable_503 += 1
                backoff = envelope.get("retry_after_s") or retry_after
                time.sleep(min(float(backoff or 0.1), 0.5))
                continue
            self.errors += 1
            if len(self.failures) < 8:
                self.failures.append(
                    f"{status} {envelope.get('code', '?')}: "
                    f"{envelope.get('message', '')}"
                )
            return

    def run(self) -> None:
        try:
            if self.batch == 1:
                for request in self.requests:
                    self._issue("/v1/run", request)
            else:
                for start in range(0, len(self.requests), self.batch):
                    chunk = self.requests[start : start + self.batch]
                    self._issue("/v1/batch", {"requests": chunk})
        finally:
            self._reconnect()


class _OneShotClient(_Client):
    """A bulk-lane client: every request gets exactly one attempt.

    The plan bench's enormous requests must *not* ride the 429 retry
    loop — under cost-aware admission the whole point is that they are
    shed, and a retrying client would just re-offer them.  A 429 is
    tallied as ``shed_429`` and the client moves on.
    """

    def __init__(self, url: str, requests: list[dict[str, Any]]):
        super().__init__(url, requests, batch=1)
        self.shed_429 = 0

    def run(self) -> None:
        try:
            for request in self.requests:
                self._issue_once(request)
        finally:
            self._reconnect()

    def _issue_once(self, body: dict[str, Any]) -> None:
        payload = json.dumps(body).encode("utf-8")
        t0 = time.perf_counter()
        try:
            conn = self._connect()
            conn.request(
                "POST", "/v1/run", body=payload,
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            raw = resp.read()
            status = resp.status
        except (http.client.HTTPException, OSError) as exc:
            self._reconnect()
            self.errors += 1
            if len(self.failures) < 8:
                self.failures.append(f"transport: {exc!r}")
            return
        try:
            doc = json.loads(raw) if raw else {}
        except ValueError:
            doc = {}
        if status == 200:
            self.latencies.append(time.perf_counter() - t0)
            self._tally(doc)
            return
        if status == 429:
            self.shed_429 += 1
            self.rejected += 1
            return
        envelope = doc.get("error")
        if not isinstance(envelope, dict):
            envelope = {"code": "unknown",
                        "message": raw.decode("utf-8", "replace")}
        self.errors += 1
        if len(self.failures) < 8:
            self.failures.append(
                f"{status} {envelope.get('code', '?')}: "
                f"{envelope.get('message', '')}"
            )


def _percentile(values: list[float], q: float) -> float | None:
    """Nearest-rank percentile (small samples; no interpolation).

    Nearest-rank on N samples means the p99 *is* one of the observed
    latencies — honest for small N, but off 3 requests it is just the
    maximum.  Callers that promise tail percentiles (the open-loop
    phases) therefore gate on :data:`MIN_OPEN_LOOP_SAMPLES` via
    :func:`_latency_fields` and record ``latency_samples`` next to every
    percentile so a reader can judge its weight.
    """
    if not values:
        return None
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, round(q * (len(ranked) - 1)))]


#: an open-loop phase refuses to report percentiles off fewer samples
#: than this (a p99 needs ~100 samples to be a 99th percentile at all;
#: 40 keeps smoke runs honest without making them slow)
MIN_OPEN_LOOP_SAMPLES = 40

#: latency histogram: bucket 0 is [0, floor); bucket i >= 1 is
#: [floor * 2**(i-1), floor * 2**i) — log-spaced, so 24 buckets span
#: 100 us to ~14 minutes
_HISTOGRAM_FLOOR_S = 1e-4
_HISTOGRAM_BUCKETS = 24


def _latency_histogram(latencies: list[float]) -> dict[str, Any]:
    """A compact log-spaced latency histogram (trailing zeros trimmed).

    >>> _latency_histogram([0.00005, 0.0003, 0.0005, 0.009])
    {'floor_s': 0.0001, 'factor': 2, 'counts': [1, 0, 0, 2, 0, 0, 0, 1]}
    """
    counts = [0] * _HISTOGRAM_BUCKETS
    for latency in latencies:
        if latency < _HISTOGRAM_FLOOR_S:
            index = 0
        else:
            index = min(
                _HISTOGRAM_BUCKETS - 1,
                int(math.log2(latency / _HISTOGRAM_FLOOR_S)) + 1,
            )
        counts[index] += 1
    while counts and counts[-1] == 0:
        counts.pop()
    return {"floor_s": _HISTOGRAM_FLOOR_S, "factor": 2, "counts": counts}


def _latency_fields(
    latencies: list[float], min_samples: int | None = None
) -> dict[str, Any]:
    """The per-phase latency block: samples, p50/p95/p99, histogram.

    With ``min_samples``, percentiles below the floor are reported as
    ``None`` (plus an explanatory ``latency_note``) rather than as
    numbers a reader would mistake for measurements.
    """
    doc: dict[str, Any] = {"latency_samples": len(latencies)}
    enough = min_samples is None or len(latencies) >= min_samples
    for field, q in (
        ("latency_p50_s", 0.50),
        ("latency_p95_s", 0.95),
        ("latency_p99_s", 0.99),
    ):
        doc[field] = _percentile(latencies, q) if enough else None
    if not enough:
        doc["latency_note"] = (
            f"percentiles suppressed: {len(latencies)} sample(s) is "
            f"below the {min_samples}-sample open-loop minimum"
        )
    doc["latency_histogram"] = _latency_histogram(latencies)
    return doc


def _fmt_latency(doc: dict[str, Any]) -> str:
    """``p50/p95/p99`` for the human-readable phase summary line."""
    parts = []
    for field, label in (
        ("latency_p50_s", "p50"),
        ("latency_p95_s", "p95"),
        ("latency_p99_s", "p99"),
    ):
        value = doc.get(field)
        parts.append(
            f"{label}={value * 1e3:.1f}ms" if value is not None else
            f"{label}=?"
        )
    return " ".join(parts) + f" n={doc.get('latency_samples', 0)}"


def _collect(
    workers: list["_Client"], min_samples: int | None = None
) -> dict[str, Any]:
    """Aggregate worker tallies into the shared phase-document fields."""
    served: dict[str, int] = {}
    rejected = unavailable = errors = non_envelope = 0
    failures: list[str] = []
    latencies: list[float] = []
    for w in workers:
        for k, v in w.served.items():
            served[k] = served.get(k, 0) + v
        rejected += w.rejected
        unavailable += w.unavailable_503
        errors += w.errors
        non_envelope += w.non_envelope_errors
        failures.extend(w.failures)
        latencies.extend(w.latencies)
    doc: dict[str, Any] = {
        "served": {k: served[k] for k in sorted(served)},
        "rejected_429": rejected,
        "unavailable_503": unavailable,
        "errors": errors,
        "non_envelope_errors": non_envelope,
    }
    doc.update(_latency_fields(latencies, min_samples=min_samples))
    if failures:
        doc["failures"] = failures[:8]
    return doc


def _run_phase(
    url: str,
    name: str,
    clients: int,
    requests_per_client: int,
    hot_ratio: float,
    hot_keys: int,
    batch: int,
    seed: int,
    cold_base: int,
    echo=None,
) -> tuple[dict[str, Any], int]:
    """Run one closed-loop phase; returns ``(phase doc, cold keys used)``."""
    hot = _hot_set(hot_keys)
    cold_index = cold_base
    workers: list[_Client] = []
    for c in range(clients):
        rng = random.Random(seed * 1000 + c)
        stream = []
        for _ in range(requests_per_client):
            if hot_ratio > 0 and rng.random() < hot_ratio:
                stream.append(hot[rng.randrange(len(hot))])
            else:
                stream.append(_cold_request(cold_index))
                cold_index += 1
        workers.append(_Client(url, stream, batch=batch))
    t0 = time.perf_counter()
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    wall = time.perf_counter() - t0
    total = clients * requests_per_client
    doc = {
        "requests": total,
        "wall_s": wall,
        "requests_per_s": total / wall if wall > 0 else None,
        "hot_ratio": hot_ratio,
    }
    doc.update(_collect(workers))
    if echo:
        rps = doc["requests_per_s"]
        echo(
            f"  {name:5s} {total:>5d} requests in {wall:7.2f}s  "
            f"{rps:>8,.1f} req/s  {_fmt_latency(doc)}  (served: "
            + ", ".join(
                f"{k}={v}" for k, v in sorted(doc["served"].items())
            )
            + (f", rejected={doc['rejected_429']}"
               if doc["rejected_429"] else "")
            + (f", ERRORS={doc['errors']}" if doc["errors"] else "")
            + ")"
        )
    return doc, cold_index - cold_base


def run_loadgen(
    url: str | None = None,
    clients: int = 4,
    requests_per_client: int = 50,
    hot_ratio: float = 0.9,
    hot_keys: int = 8,
    batch: int = 1,
    seed: int = 7,
    smoke: bool = False,
    jobs: int = 1,
    cache_capacity: int | None = None,
    queue_limit: int | None = None,
    echo=None,
) -> dict[str, Any]:
    """Run the two-phase load and return the bench document.

    With ``url=None`` an in-process
    :class:`~repro.service.server.ServiceServer` is started on an
    ephemeral port (and torn down afterwards) — the standalone mode the
    checked-in ``BENCH_service_throughput.json`` is generated in.  With
    a ``url``, an already-running server is driven — the CI mode
    (``python -m repro serve`` + ``python -m repro loadgen --url ...``);
    note the cold phase is only *cold* against a freshly started server.
    ``smoke`` shrinks the request counts for CI without changing the
    phase structure.
    """
    from repro.bench import _git_revision

    if smoke:
        clients = min(clients, 2)
        requests_per_client = min(requests_per_client, 8)
        hot_keys = min(hot_keys, 4)
    produced_by = "python -m repro loadgen"
    if smoke:
        produced_by += " --smoke"
    doc: dict[str, Any] = {
        "schema": SERVICE_BENCH_SCHEMA,
        "produced_by": produced_by,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "revision": _git_revision(),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "hot_ratio": hot_ratio,
        "hot_keys": hot_keys,
        "batch": batch,
        "seed": seed,
        "phases": {},
    }
    server = None
    if url is None:
        from repro.service.server import ServiceServer, SimService

        kwargs: dict[str, Any] = {"jobs": jobs}
        if cache_capacity is not None:
            kwargs["cache_capacity"] = cache_capacity
        if queue_limit is not None:
            kwargs["queue_limit"] = queue_limit
        server = ServiceServer(SimService(**kwargs))
        url = server.url
        doc["in_process_server"] = True
    try:
        if echo:
            echo(f"load-generating against {url} "
                 f"({clients} client(s) x {requests_per_client} request(s))")
        cold, cold_used = _run_phase(
            url, "cold", clients, requests_per_client,
            hot_ratio=0.0, hot_keys=hot_keys, batch=batch,
            seed=seed, cold_base=0, echo=echo,
        )
        hot, _ = _run_phase(
            url, "hot", clients, requests_per_client,
            hot_ratio=hot_ratio, hot_keys=hot_keys, batch=batch,
            seed=seed + 1, cold_base=cold_used, echo=echo,
        )
    finally:
        if server is not None:
            server.close()
    doc["phases"]["cold"] = cold
    doc["phases"]["hot"] = hot
    cold_rps = cold["requests_per_s"]
    hot_rps = hot["requests_per_s"]
    doc["hot_vs_cold_speedup"] = (
        hot_rps / cold_rps if cold_rps and hot_rps else None
    )
    doc["errors"] = cold["errors"] + hot["errors"]
    if echo and doc["hot_vs_cold_speedup"]:
        echo(f"  hot/cold speedup: {doc['hot_vs_cold_speedup']:.1f}x")
    return doc


# --------------------------------------------------------------- open loop


class _Cursor:
    """A shared, thread-safe index into the open-loop arrival schedule."""

    def __init__(self, items: list):
        self.items = items
        self._i = 0
        self._lock = threading.Lock()

    def next(self):
        with self._lock:
            if self._i >= len(self.items):
                return None
            item = self.items[self._i]
            self._i += 1
            return item


class _OpenLoopWorker(_Client):
    """One open-loop worker: issue requests at their *scheduled* times.

    Poisson arrivals are precomputed as offsets from the phase start;
    each worker pulls the next arrival off the shared cursor, sleeps
    until its time, and measures latency from the scheduled time — so
    when the tier falls behind the offered rate, the queueing delay
    lands in the latency distribution instead of silently slowing the
    arrival process (the coordinated-omission trap a closed loop has).
    """

    def __init__(self, url: str, cursor: _Cursor, t0: float):
        super().__init__(url, requests=[])
        self.cursor = cursor
        self.t0 = t0

    def run(self) -> None:
        try:
            while True:
                item = self.cursor.next()
                if item is None:
                    return
                offset, body = item
                target = self.t0 + offset
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                self._issue("/v1/run", body, t0=target)
        finally:
            self._reconnect()


def _run_open_phase(
    url: str,
    name: str,
    rate: float,
    duration_s: float,
    hot_ratio: float,
    hot_keys: int,
    concurrency: int,
    seed: int,
    cold_base: int,
    echo=None,
    mid_phase: tuple[float, Any] | None = None,
) -> tuple[dict[str, Any], int]:
    """One open-loop phase at a fixed offered rate.

    ``mid_phase=(at_s, hook)`` fires ``hook()`` that many seconds into
    the phase from the coordinating thread — the fault run uses it to
    kill a shard while the offered load keeps arriving.
    """
    rng = random.Random(seed)
    hot = _hot_set(hot_keys)
    schedule: list[tuple[float, dict[str, Any]]] = []
    t = 0.0
    cold_index = cold_base
    while True:
        t += rng.expovariate(rate)
        if t >= duration_s:
            break
        if hot_ratio > 0 and rng.random() < hot_ratio:
            body = hot[rng.randrange(len(hot))]
        else:
            body = _cold_request(cold_index)
            cold_index += 1
        schedule.append((t, body))
    cursor = _Cursor(schedule)
    t0 = time.perf_counter()
    workers = [
        _OpenLoopWorker(url, cursor, t0) for _ in range(concurrency)
    ]
    for w in workers:
        w.start()
    if mid_phase is not None:
        at_s, hook = mid_phase
        delay = t0 + at_s - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        hook()
    for w in workers:
        w.join()
    wall = time.perf_counter() - t0
    doc: dict[str, Any] = {
        "mode": "open_loop",
        "offered_rate_per_s": rate,
        "duration_s": duration_s,
        "concurrency": concurrency,
        "requests": len(schedule),
        "wall_s": wall,
        "requests_per_s": len(schedule) / wall if wall > 0 else None,
        "hot_ratio": hot_ratio,
    }
    doc.update(_collect(workers, min_samples=MIN_OPEN_LOOP_SAMPLES))
    if echo:
        echo(
            f"  {name:15s} {len(schedule):>5d} arrivals at "
            f"{rate:,.0f}/s over {duration_s:g}s  {_fmt_latency(doc)}"
            + (f", 503s={doc['unavailable_503']}"
               if doc["unavailable_503"] else "")
            + (f", ERRORS={doc['errors']}" if doc["errors"] else "")
        )
    return doc, cold_index - cold_base


def _warm(url: str, hot_keys: int) -> None:
    """Touch every hot key once so a phase measures steady state."""
    worker = _Client(url, _hot_set(hot_keys))
    worker.run()  # synchronously, on this thread


def _fetch_results(url: str, requests: list[dict[str, Any]]) -> list[Any]:
    """The served ``result`` documents for ``requests``, in order."""
    parsed = urllib.parse.urlsplit(url)
    conn = http.client.HTTPConnection(
        parsed.hostname or "127.0.0.1", parsed.port or 80, timeout=120.0
    )
    results = []
    try:
        for body in requests:
            conn.request(
                "POST", "/v1/run", body=json.dumps(body).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            raw = resp.read()
            if resp.status != 200:
                raise RuntimeError(
                    f"identity fetch got {resp.status}: {raw[:200]!r}"
                )
            results.append(json.loads(raw)["result"])
    finally:
        conn.close()
    return results


# ------------------------------------------------------------- shard bench

#: the sharded tier's documented SLOs, recorded in every bench document
#: and enforced by :func:`check_shard_against`:
#: 2-shard closed-loop throughput must be at least this multiple of the
#: 1-shard row on the same host...
SCALING_FLOOR_X = 1.5

#: ...and the shard-kill run's p99 must stay within this multiple of
#: the fault-free p99 (the Fractal bar: fault recovery *compared to
#: fault-free conditions*).  The router detects the death passively on
#: the first failed forward, so the visible damage is a sub-second
#: blip of retried requests, not a minutes-long outage — but p99 is
#: exactly where that blip lands, hence a double-digit allowance.
FAULT_P99_BOUND_X = 15.0


def run_shard_bench(
    url: str | None = None,
    shards: int = 2,
    rate: float = 150.0,
    duration_s: float = 8.0,
    concurrency: int = 16,
    hot_keys: int = 32,
    cache_capacity: int = 20,
    clients: int = 4,
    requests_per_client: int = 100,
    seed: int = 7,
    smoke: bool = False,
    echo=None,
) -> dict[str, Any]:
    """The sharded-tier bench: scaling rows, open-loop tails, fault run.

    Standalone (``url=None``) it builds its own tiers and runs four
    phases:

    * ``scale_1shard`` / ``scale_2shard`` — the *same* closed-loop
      hot-set stream (working set ``hot_keys`` keys, per-shard cache
      capacity ``cache_capacity`` entries) against a 1-shard and an
      N-shard tier.  The working set exceeds one shard's cache but fits
      the tier's aggregate capacity, so the 2-shard row wins on cache
      locality — the serving-layer translation of the paper's claim,
      and an honest scaling number on any host (it does not require
      spare cores, only aggregate cache).
    * ``open_loop`` — Poisson arrivals at ``rate`` against a fresh
      N-shard tier; the tail-latency (p50/p95/p99 + histogram) phase.
    * ``open_loop_fault`` — the same offered load, with shard 0
      ``kill()``-ed 30% into the phase.  The supervisor respawns it
      (same port, ledger-warmed cache) and the router rides the gap;
      the phase's p99 must stay within :data:`FAULT_P99_BOUND_X` of the
      fault-free p99, with zero non-envelope errors.

    It finishes with the identity check: every hot document served by
    the (restarted, failed-over) tier must be ``==``-identical to a
    fresh single-process :class:`~repro.service.server.SimService`'s
    answer.

    Attached (``url=...``) it drives an already-running tier with the
    ``open_loop`` phase only — the CI leg.
    """
    from repro.bench import _git_revision

    if smoke:
        rate = min(rate, 60.0)
        duration_s = min(duration_s, 2.5)
        hot_keys = min(hot_keys, 32)
        requests_per_client = min(requests_per_client, 25)
        concurrency = min(concurrency, 8)
    produced_by = "python -m repro loadgen --open-loop"
    if smoke:
        produced_by += " --smoke"
    doc: dict[str, Any] = {
        "schema": SHARD_BENCH_SCHEMA,
        "produced_by": produced_by,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "revision": _git_revision(),
        "shards": shards,
        "cache_capacity_per_shard": cache_capacity,
        "hot_keys": hot_keys,
        "offered_rate_per_s": rate,
        "duration_s": duration_s,
        "concurrency": concurrency,
        "seed": seed,
        "scaling_floor_x": SCALING_FLOOR_X,
        "fault_p99_bound_x": FAULT_P99_BOUND_X,
        "phases": {},
    }

    if url is not None:
        # attached mode: one open-loop phase against the running tier
        doc["attached"] = True
        if echo:
            echo(f"open-loop load against {url}")
        _warm(url, hot_keys)
        phase, _ = _run_open_phase(
            url, "open_loop", rate, duration_s,
            hot_ratio=0.95, hot_keys=hot_keys,
            concurrency=concurrency, seed=seed, cold_base=0, echo=echo,
        )
        doc["phases"]["open_loop"] = phase
        doc["errors"] = phase["errors"]
        doc["non_envelope_errors"] = phase["non_envelope_errors"]
        return doc

    from repro.service.server import SimService
    from repro.service.shard import ShardedTier

    def scale_phase(name: str, tier_shards: int) -> dict[str, Any]:
        with ShardedTier(
            shards=tier_shards, cache_capacity=cache_capacity
        ) as tier:
            _warm(tier.url, hot_keys)
            phase, _ = _run_phase(
                tier.url, name, clients, requests_per_client,
                hot_ratio=1.0, hot_keys=hot_keys, batch=1,
                seed=seed, cold_base=0, echo=echo,
            )
            phase["shards"] = tier_shards
        return phase

    if echo:
        echo(
            f"sharded-tier bench: working set {hot_keys} keys, "
            f"{cache_capacity} cache entries/shard "
            f"({shards * cache_capacity} aggregate on {shards} shards)"
        )
    one = scale_phase("scale_1shard", 1)
    many = scale_phase(f"scale_{shards}shard", shards)
    doc["phases"]["scale_1shard"] = one
    doc["phases"][f"scale_{shards}shard"] = many
    one_rps, many_rps = one["requests_per_s"], many["requests_per_s"]
    doc["scaling_x"] = (
        many_rps / one_rps if one_rps and many_rps else None
    )
    if echo and doc["scaling_x"]:
        echo(
            f"  {shards}-shard vs 1-shard throughput: "
            f"{doc['scaling_x']:.2f}x (floor {SCALING_FLOOR_X:g}x)"
        )

    # open-loop tail latency, fault-free then with shard 0 killed
    with ShardedTier(
        shards=shards, cache_capacity=cache_capacity, restart=True
    ) as tier:
        _warm(tier.url, hot_keys)
        fault_free, cold_used = _run_open_phase(
            tier.url, "open_loop", rate, duration_s,
            hot_ratio=0.95, hot_keys=hot_keys,
            concurrency=concurrency, seed=seed + 1, cold_base=0,
            echo=echo,
        )
        doc["phases"]["open_loop"] = fault_free

        kill_at = duration_s * 0.3
        victim = tier.supervisors[0]

        def kill_shard() -> None:
            if victim.proc is not None:
                victim.proc.kill()

        faulted, _ = _run_open_phase(
            tier.url, "open_loop_fault", rate, duration_s,
            hot_ratio=0.95, hot_keys=hot_keys,
            concurrency=concurrency, seed=seed + 2,
            cold_base=cold_used, echo=echo,
            mid_phase=(kill_at, kill_shard),
        )
        faulted["killed_shard"] = 0
        faulted["killed_at_s"] = kill_at
        # let the supervisor finish the respawn before the tier closes
        deadline = time.monotonic() + 10.0
        while tier.restarts < 1 and time.monotonic() < deadline:
            time.sleep(0.05)
        faulted["shard_restarts"] = tier.restarts
        doc["phases"]["open_loop_fault"] = faulted

        router = tier.router.counters.snapshot()
        doc["router_counters"] = router

        # identity: the failed-over, restarted tier must serve the same
        # documents as a fresh single-process service
        hot = _hot_set(hot_keys)
        tier_results = _fetch_results(tier.url, hot)
        reference = SimService(cache_capacity=hot_keys)
        try:
            ref_results = [
                reference.handle_run(body)["result"] for body in hot
            ]
        finally:
            reference.close()
        doc["identity_checked"] = len(hot)
        doc["identity_ok"] = tier_results == ref_results

    p99_free = fault_free.get("latency_p99_s")
    p99_fault = faulted.get("latency_p99_s")
    doc["fault_p99_ratio"] = (
        p99_fault / p99_free if p99_free and p99_fault else None
    )
    doc["errors"] = sum(p["errors"] for p in doc["phases"].values())
    doc["non_envelope_errors"] = sum(
        p["non_envelope_errors"] for p in doc["phases"].values()
    )
    if echo:
        if doc["fault_p99_ratio"]:
            echo(
                f"  shard-kill p99 vs fault-free p99: "
                f"{doc['fault_p99_ratio']:.2f}x "
                f"(bound {FAULT_P99_BOUND_X:g}x)"
            )
        echo(
            f"  identity: {doc['identity_checked']} documents vs the "
            f"unsharded engine path — "
            + ("identical" if doc["identity_ok"] else "DIVERGED")
        )
    return doc


def check_shard_against(
    fresh: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 5.0,
) -> list[str]:
    """Guardrail for ``BENCH_service_shard.json`` (CI's ``--check``).

    Same shape as :func:`check_service_against` — schema drift refuses,
    only slow-direction drift beyond ``tolerance`` is a regression —
    plus the tier's own SLOs, which are absolute, not relative to the
    baseline: zero non-envelope errors, the ``scaling_floor_x``
    throughput scaling floor, the ``fault_p99_bound_x`` tail bound
    and the ``identity_ok`` bit (whenever the fresh run measured them).
    """
    fresh_schema = fresh.get("schema")
    base_schema = baseline.get("schema")
    if fresh_schema != base_schema:
        raise ValueError(
            f"cannot compare shard bench documents across schemas: fresh "
            f"run is schema {fresh_schema!r}, baseline is schema "
            f"{base_schema!r}.  Regenerate the baseline with the current "
            f"code (python -m repro loadgen --open-loop --output "
            f"<baseline.json>) and re-check."
        )
    problems: list[str] = []
    if fresh.get("errors"):
        problems.append(
            f"{fresh['errors']} request(s) failed "
            f"(first: {_first_failure(fresh)})"
        )
    if fresh.get("non_envelope_errors"):
        problems.append(
            f"{fresh['non_envelope_errors']} error response(s) leaked "
            f"without the {{\"error\": ...}} envelope"
        )
    for name, base_phase in baseline.get("phases", {}).items():
        fresh_phase = fresh.get("phases", {}).get(name)
        if fresh_phase is None:
            continue  # smoke/attached runs measure a phase subset
        b = base_phase.get("requests_per_s")
        got = fresh_phase.get("requests_per_s")
        if b and got and got < b / tolerance:
            problems.append(
                f"phase {name!r}: {got:,.1f} req/s < baseline "
                f"{b:,.1f} / {tolerance:g}"
            )
        if fresh_phase.get("mode") == "open_loop":
            if fresh_phase.get("latency_note"):
                problems.append(
                    f"phase {name!r}: {fresh_phase['latency_note']}"
                )
            b99 = base_phase.get("latency_p99_s")
            got99 = fresh_phase.get("latency_p99_s")
            if b99 and got99 and got99 > b99 * tolerance:
                problems.append(
                    f"phase {name!r}: p99 {got99 * 1e3:,.1f}ms > baseline "
                    f"{b99 * 1e3:,.1f}ms x {tolerance:g}"
                )
    floor = fresh.get("scaling_floor_x") or SCALING_FLOOR_X
    scaling = fresh.get("scaling_x")
    if scaling is not None and scaling < floor:
        problems.append(
            f"throughput scaling {scaling:.2f}x is below the "
            f"{floor:g}x floor"
        )
    bound = fresh.get("fault_p99_bound_x") or FAULT_P99_BOUND_X
    ratio = fresh.get("fault_p99_ratio")
    if ratio is not None and ratio > bound:
        problems.append(
            f"shard-kill p99 is {ratio:.2f}x the fault-free p99 "
            f"(bound {bound:g}x)"
        )
    if fresh.get("identity_ok") is False:
        problems.append(
            "served documents diverged from the unsharded engine path"
        )
    return problems


def _wait_job(manager, job_id: str, timeout_s: float = 300.0) -> None:
    """Block until the job is terminal (the in-process polling loop)."""
    deadline = time.monotonic() + timeout_s
    while not manager.get(job_id).terminal:
        if time.monotonic() > deadline:
            raise RuntimeError(f"job {job_id} did not finish in {timeout_s}s")
        time.sleep(0.02)


def run_job_bench(
    clients: int = 2,
    requests_per_client: int = 16,
    hot_ratio: float = 0.9,
    hot_keys: int = 4,
    seed: int = 7,
    smoke: bool = False,
    jobs: int = 1,
    sizes: list[int] | None = None,
    echo=None,
) -> dict[str, Any]:
    """Measure batch-job interference on interactive serving latency.

    Three rounds, each against a fresh in-process server (fresh cache,
    fresh jobs directory), all issuing the identical seeded interactive
    request stream:

    1. **baseline** — interactive traffic only; records p50 latency.
    2. **with_job** — a touch-sweep job is enqueued first, then the same
       interactive stream runs while the job's cells compete for the
       worker pool through the :class:`~repro.service.scheduler.PoolGate`;
       records the contended p50 and the job's time-to-complete.
    3. **restart** — the same job is enqueued, the job runner is stopped
       after at least one cell checkpointed (the in-process equivalent
       of killing the server), and a new service over the same jobs
       directory re-adopts and finishes it; records total
       time-to-complete including the restart and whether the resumed
       result document equals round 2's uninterrupted one.

    ``p50_ratio`` (round 2 p50 / round 1 p50) is the acceptance number:
    the ROADMAP requires it within 2x.  ``results_identical`` must be
    ``True`` — the byte-identity contract under restart.
    """
    import shutil
    import tempfile

    from repro.bench import _git_revision
    from repro.service.server import ServiceServer, SimService

    if smoke:
        clients = min(clients, 2)
        requests_per_client = min(requests_per_client, 8)
        hot_keys = min(hot_keys, 4)
    if sizes is None:
        sizes = [1024, 2048, 4096, 8192] if smoke else (
            [4096, 8192, 16384, 32768, 65536]
        )
    job_body = {"kind": "touch", "sizes": sizes, "f": "x^0.5"}
    doc: dict[str, Any] = {
        "schema": SERVICE_BENCH_SCHEMA,
        "produced_by": "python -m repro loadgen --job-mode"
        + (" --smoke" if smoke else ""),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "revision": _git_revision(),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "hot_ratio": hot_ratio,
        "hot_keys": hot_keys,
        "seed": seed,
        "job": job_body,
        "rounds": {},
    }
    errors = 0

    def interactive_round(url: str, name: str) -> dict[str, Any]:
        phase, _ = _run_phase(
            url, name, clients, requests_per_client,
            hot_ratio=hot_ratio, hot_keys=hot_keys, batch=1,
            seed=seed, cold_base=0, echo=echo,
        )
        return phase

    # round 1: no batch job anywhere near the pool
    with ServiceServer(SimService(jobs=jobs)) as server:
        baseline = interactive_round(server.url, "base")
    errors += baseline["errors"]
    doc["rounds"]["baseline"] = baseline

    # round 2: the job competes with the identical interactive stream
    jobs_dir = tempfile.mkdtemp(prefix="repro-jobbench-")
    try:
        service = SimService(jobs=jobs, jobs_dir=jobs_dir)
        with ServiceServer(service) as server:
            manager = service.job_manager
            t0 = time.monotonic()
            job = manager.submit_json(dict(job_body))
            contended = interactive_round(server.url, "j+int")
            _wait_job(manager, job.id)
            job_s = time.monotonic() - t0
            uninterrupted = manager.result(job.id)
        errors += contended["errors"]
        doc["rounds"]["with_job"] = contended
        doc["job_s"] = job_s
    finally:
        shutil.rmtree(jobs_dir, ignore_errors=True)

    # round 3: stop the runner mid-job, re-adopt, finish from checkpoint
    jobs_dir = tempfile.mkdtemp(prefix="repro-jobbench-")
    try:
        service = SimService(jobs=jobs, jobs_dir=jobs_dir)
        manager = service.job_manager
        t0 = time.monotonic()
        job = manager.submit_json(dict(job_body))
        deadline = time.monotonic() + 300.0
        while (
            manager.get(job.id).cells_done < 1
            and not manager.get(job.id).terminal
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        interrupted = not manager.get(job.id).terminal
        service.close()  # runner stops at the next cell edge
        service = SimService(jobs=jobs, jobs_dir=jobs_dir)  # re-adopts
        manager = service.job_manager
        _wait_job(manager, job.id)
        doc["job_with_restart_s"] = time.monotonic() - t0
        doc["restart_interrupted_mid_job"] = interrupted
        resumed = manager.result(job.id)
        service.close()
    finally:
        shutil.rmtree(jobs_dir, ignore_errors=True)

    doc["results_identical"] = resumed == uninterrupted
    base_p50 = baseline.get("latency_p50_s")
    contended_p50 = contended.get("latency_p50_s")
    doc["p50_no_job_s"] = base_p50
    doc["p50_with_job_s"] = contended_p50
    doc["p50_ratio"] = (
        contended_p50 / base_p50 if base_p50 and contended_p50 else None
    )
    doc["errors"] = errors
    if echo:
        if doc["p50_ratio"]:
            echo(
                f"  interactive p50 {base_p50 * 1e3:.1f}ms alone -> "
                f"{contended_p50 * 1e3:.1f}ms beside the job "
                f"({doc['p50_ratio']:.2f}x)"
            )
        echo(
            f"  job: {doc['job_s']:.2f}s uninterrupted, "
            f"{doc['job_with_restart_s']:.2f}s with an injected restart "
            f"(results identical: {doc['results_identical']})"
        )
    return doc


# -------------------------------------------------------------- plan bench

#: the planner's documented admission SLO, recorded in every plan-bench
#: document and enforced by :func:`check_plan_against`: under the
#: adversarial cheap/enormous mix, cost-aware admission must keep the
#: cheap lane's p99 within this multiple of the uniform-load p99 —
#: and flat ``queue_limit`` admission must demonstrably exceed it,
#: otherwise the mix was not adversarial enough to mean anything.
PLAN_P99_BOUND_X = 3.0

#: global in-flight predicted-cost ceiling for the cost-aware phase —
#: far below one enormous request's predicted charged words, far above
#: a cheap request's, so admission separates the lanes by cost alone
_PLAN_COST_CEILING = 1e6

#: the prediction-accuracy matrix: every simulation engine over the
#: bench programs, at an interior guest width and an extrapolated one
#: (beyond any calibration grid — the bars must widen, not the model
#: silently pretend).  ``direct`` is excluded: it charges zero words,
#: so its words band is the trivial [0, 0].
_PLAN_MATRIX_ENGINES = ("vec", "hmm", "bt", "brent")
_PLAN_MATRIX_PROGRAMS = ("sort", "fft-rec")
_PLAN_INTERIOR_V = 32
_PLAN_EXTRAPOLATED_V = 128


def _plan_cheap_request(index: int) -> dict[str, Any]:
    """One cheap-lane request: a small vec sort, always a cold key."""
    return {
        "engine": "vec", "program": "sort", "v": 32, "mu": 8,
        "f": f"x^0.{200001 + index}", "trace": "counters",
    }


def _plan_enormous_request(index: int, v: int) -> dict[str, Any]:
    """One bulk-lane request: a bt sort wide enough to hold a queue
    slot for hundreds of milliseconds, always a cold key."""
    return {
        "engine": "bt", "program": "sort", "v": v, "mu": 8,
        "f": f"x^0.{300001 + index}", "trace": "counters",
    }


def _measured_charged_words(engine: str, program: str, v: int) -> float:
    """Actually run the cell and read its charged words off the meter."""
    from repro.engines import ENGINES, build_program, resolve_access_function

    result = ENGINES[engine].run(
        build_program(program, v, 8),
        resolve_access_function("x^0.5"),
        trace="counters",
    )
    return float(
        result.counters.get("words_touched", 0)
        + result.counters.get("words_moved", 0)
    )


def _post_plan(conn: http.client.HTTPConnection, body: dict[str, Any]) -> dict[str, Any]:
    conn.request(
        "POST", "/v1/plan", body=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    resp = conn.getresponse()
    raw = resp.read()
    if resp.status != 200:
        raise RuntimeError(f"/v1/plan got {resp.status}: {raw[:200]!r}")
    return json.loads(raw)


def _run_mix_phase(
    url: str,
    name: str,
    cheap_streams: list[list[dict[str, Any]]],
    bulk_streams: list[list[dict[str, Any]]],
    echo=None,
) -> dict[str, Any]:
    """One adversarial phase: cheap closed-loop clients beside one-shot
    bulk clients; the bulk lane starts first so the enormous requests
    are already at the door when the cheap lane arrives."""
    cheap = [_Client(url, stream) for stream in cheap_streams]
    bulk = [_OneShotClient(url, stream) for stream in bulk_streams]
    t0 = time.perf_counter()
    for w in bulk:
        w.start()
    if bulk:
        time.sleep(0.05)
    for w in cheap:
        w.start()
    for w in bulk:
        w.join()
    for w in cheap:
        w.join()
    wall = time.perf_counter() - t0
    doc: dict[str, Any] = {"wall_s": wall, "cheap": _collect(cheap)}
    if bulk:
        bulk_doc = _collect(bulk)
        bulk_doc["shed_429"] = sum(w.shed_429 for w in bulk)
        doc["bulk"] = bulk_doc
    if echo:
        line = f"  {name:22s} cheap {_fmt_latency(doc['cheap'])}"
        if bulk:
            served = sum(doc["bulk"]["served"].values())
            line += (f"  bulk served={served} "
                     f"shed={doc['bulk']['shed_429']}")
        if doc["cheap"]["errors"] or (bulk and doc["bulk"]["errors"]):
            line += "  ERRORS"
        echo(line)
    return doc


def run_plan_bench(
    seed: int = 7,
    smoke: bool = False,
    calibration: str | None = None,
    echo=None,
) -> dict[str, Any]:
    """The planner bench (``loadgen --plan-mode``): two sections.

    1. **Prediction accuracy** — ``POST /v1/plan`` over the engine x
       program matrix at an interior and an extrapolated guest width;
       each prediction's ``[charged_words_lo, charged_words_hi]`` band
       is then checked against the actually-measured charged words.
    2. **Adversarial admission** — the same cheap request stream under
       three servers: uniform load (cost-aware server, cheap lane
       only), the cheap/enormous mix under flat ``queue_limit``
       admission, and the same mix under cost-aware admission with a
       global predicted-cost ceiling below one enormous request.  Flat
       admission lets the enormous requests occupy the queue slots
       (the cheap lane rides 429 backoffs); cost-aware admission sheds
       them at the door before they ever hold a slot.
    """
    from repro.analysis.predict import (
        CalibrationProfile,
        CostModel,
        calibrate_profile,
        load_profile,
    )
    from repro.bench import _git_revision
    from repro.service.planner import Planner
    from repro.service.server import ServiceServer, SimService

    if calibration is not None:
        profile = load_profile(calibration)
        cal_source = calibration
    else:
        if echo:
            echo("calibrating a smoke profile in-process "
                 "(pass --calibration PROFILE to reuse a saved one)")
        profile = CalibrationProfile(
            calibrate_profile(smoke=True, repeats=1)
        )
        cal_source = "in-process smoke calibration"
    model = CostModel(profile)

    def make_planner() -> Planner:
        # budgets are stateful; every server gets a fresh planner
        return Planner(model, cost_ceiling=_PLAN_COST_CEILING)

    # enough cheap samples that nearest-rank p99 sits below the max —
    # one OS-noise outlier must not decide the phase comparison
    cheap_clients = 3
    cheap_per_client = 34 if smoke else 67
    # as many bulk clients as queue slots: under flat admission the
    # enormous requests hold every slot for the whole bulk window, so
    # the cheap lane's lockout is deterministic, not a thread race
    bulk_clients = 4
    bulk_per_client = 3 if smoke else 2
    enormous_v = 512 if smoke else 1024
    queue_limit = 4

    doc: dict[str, Any] = {
        "schema": PLAN_BENCH_SCHEMA,
        "produced_by": "python -m repro loadgen --plan-mode"
        + (" --smoke" if smoke else ""),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "revision": _git_revision(),
        "seed": seed,
        "calibration": {
            "source": cal_source,
            "v_grid": profile.doc.get("v_grid"),
            "mu": profile.doc.get("mu"),
            "f": profile.doc.get("f"),
        },
        "queue_limit": queue_limit,
        "cost_ceiling": _PLAN_COST_CEILING,
        "cheap_clients": cheap_clients,
        "cheap_per_client": cheap_per_client,
        "bulk_clients": bulk_clients,
        "bulk_per_client": bulk_per_client,
        "enormous_v": enormous_v,
        "p99_bound_x": PLAN_P99_BOUND_X,
    }

    # --- section 1: prediction accuracy + the uniform-load baseline
    if echo:
        echo("prediction accuracy (POST /v1/plan vs measured):")
    rows: list[dict[str, Any]] = []
    cheap_base = 0
    with ServiceServer(
        SimService(queue_limit=queue_limit, planner=make_planner())
    ) as server:
        parsed = urllib.parse.urlsplit(server.url)
        conn = http.client.HTTPConnection(
            parsed.hostname or "127.0.0.1", parsed.port or 80, timeout=120.0
        )
        try:
            for engine in _PLAN_MATRIX_ENGINES:
                for program in _PLAN_MATRIX_PROGRAMS:
                    for v in (_PLAN_INTERIOR_V, _PLAN_EXTRAPOLATED_V):
                        plan = _post_plan(conn, {
                            "engine": engine, "program": program,
                            "v": v, "mu": 8, "f": "x^0.5",
                        })
                        pred = plan["prediction"]
                        measured = _measured_charged_words(
                            engine, program, v
                        )
                        row = {
                            "engine": engine,
                            "program": program,
                            "v": v,
                            "predicted": pred["charged_words"],
                            "lo": pred["charged_words_lo"],
                            "hi": pred["charged_words_hi"],
                            "measured": measured,
                            "extrapolated": pred["extrapolated"],
                            "within_band": (
                                pred["charged_words_lo"] <= measured
                                <= pred["charged_words_hi"]
                            ),
                        }
                        rows.append(row)
                        if echo:
                            tag = ("ok" if row["within_band"]
                                   else "OUT OF BAND")
                            extra = (" (extrapolated)"
                                     if row["extrapolated"] else "")
                            echo(
                                f"  {engine:7s} {program:8s} v={v:<5d}"
                                f" predicted={row['predicted']:>12,.0f}"
                                f" measured={measured:>12,.0f}"
                                f"  {tag}{extra}"
                            )
        finally:
            conn.close()
        doc["prediction"] = {
            "rows": rows,
            "all_within_band": all(r["within_band"] for r in rows),
        }

        if echo:
            echo("admission phases (cheap p99 is the number):")
        cheap_streams = []
        for _ in range(cheap_clients):
            stream = [
                _plan_cheap_request(cheap_base + i)
                for i in range(cheap_per_client)
            ]
            cheap_base += cheap_per_client
            cheap_streams.append(stream)
        uniform = _run_mix_phase(
            server.url, "uniform", cheap_streams, [], echo=echo
        )

    def fresh_cheap_streams() -> list[list[dict[str, Any]]]:
        nonlocal cheap_base
        streams = []
        for _ in range(cheap_clients):
            streams.append([
                _plan_cheap_request(cheap_base + i)
                for i in range(cheap_per_client)
            ])
            cheap_base += cheap_per_client
        return streams

    bulk_base = 0

    def fresh_bulk_streams() -> list[list[dict[str, Any]]]:
        nonlocal bulk_base
        streams = []
        for _ in range(bulk_clients):
            streams.append([
                _plan_enormous_request(bulk_base + i, enormous_v)
                for i in range(bulk_per_client)
            ])
            bulk_base += bulk_per_client
        return streams

    # --- section 2: the adversarial mix, flat vs cost-aware admission
    with ServiceServer(SimService(queue_limit=queue_limit)) as server:
        flat = _run_mix_phase(
            server.url, "adversarial_flat",
            fresh_cheap_streams(), fresh_bulk_streams(), echo=echo,
        )

    with ServiceServer(
        SimService(queue_limit=queue_limit, planner=make_planner())
    ) as server:
        costaware = _run_mix_phase(
            server.url, "adversarial_costaware",
            fresh_cheap_streams(), fresh_bulk_streams(), echo=echo,
        )

    doc["phases"] = {
        "uniform": uniform,
        "adversarial_flat": flat,
        "adversarial_costaware": costaware,
    }
    uniform_p99 = uniform["cheap"].get("latency_p99_s")
    flat_p99 = flat["cheap"].get("latency_p99_s")
    costaware_p99 = costaware["cheap"].get("latency_p99_s")
    doc["cheap_p99_uniform_s"] = uniform_p99
    doc["cheap_p99_flat_s"] = flat_p99
    doc["cheap_p99_costaware_s"] = costaware_p99
    doc["flat_over_uniform"] = (
        flat_p99 / uniform_p99 if uniform_p99 and flat_p99 else None
    )
    doc["costaware_over_uniform"] = (
        costaware_p99 / uniform_p99
        if uniform_p99 and costaware_p99 else None
    )
    doc["shed_429"] = costaware["bulk"]["shed_429"]
    doc["errors"] = sum(
        phase[lane]["errors"]
        for phase in doc["phases"].values()
        for lane in ("cheap", "bulk")
        if lane in phase
    )
    if echo and doc["flat_over_uniform"] and doc["costaware_over_uniform"]:
        echo(
            f"  cheap p99 vs uniform: flat "
            f"{doc['flat_over_uniform']:.1f}x, cost-aware "
            f"{doc['costaware_over_uniform']:.1f}x (bound "
            f"{PLAN_P99_BOUND_X:g}x); cost-aware shed "
            f"{doc['shed_429']} enormous request(s)"
        )
    return doc


def check_plan_against(
    fresh: dict[str, Any], baseline: dict[str, Any]
) -> list[str]:
    """Enforce the plan bench's documented guarantees.

    Refuses (raises :class:`ValueError`) on schema drift, like the
    other ``check_*_against`` gates.  The checks are self-SLOs of the
    fresh document — every prediction within its own error band, the
    cost-aware phase actually shedding, and the p99 contrast — so
    ``check_plan_against(doc, doc)`` is the standalone-mode check.
    """
    fresh_schema = fresh.get("schema")
    base_schema = baseline.get("schema")
    if fresh_schema != base_schema:
        raise ValueError(
            f"cannot compare plan bench documents across schemas: fresh "
            f"run is schema {fresh_schema!r}, baseline is schema "
            f"{base_schema!r}.  Regenerate the baseline with the current "
            f"code (python -m repro loadgen --plan-mode --output "
            f"<baseline.json>) and re-check."
        )
    problems: list[str] = []
    if fresh.get("errors"):
        problems.append(f"{fresh['errors']} request(s) failed")
    rows = fresh.get("prediction", {}).get("rows", [])
    if not rows:
        problems.append("no prediction-accuracy rows recorded")
    for row in rows:
        if not row.get("within_band"):
            problems.append(
                f"prediction out of band: {row['engine']}/{row['program']}"
                f" v={row['v']}: measured {row['measured']:,.0f} outside "
                f"[{row['lo']:,.0f}, {row['hi']:,.0f}]"
            )
    if not fresh.get("shed_429"):
        problems.append(
            "cost-aware admission shed no enormous request (shed_429=0) "
            "— the cost gate never fired"
        )
    bound = fresh.get("p99_bound_x") or PLAN_P99_BOUND_X
    costaware_x = fresh.get("costaware_over_uniform")
    flat_x = fresh.get("flat_over_uniform")
    if costaware_x is None or flat_x is None:
        problems.append("cheap-lane p99 ratios missing from the document")
    else:
        if costaware_x > bound:
            problems.append(
                f"cost-aware admission: cheap p99 is {costaware_x:.2f}x "
                f"the uniform-load p99 (documented bound: {bound:g}x)"
            )
        if flat_x <= bound:
            problems.append(
                f"flat queue_limit admission kept cheap p99 at "
                f"{flat_x:.2f}x uniform (<= {bound:g}x) — the adversarial "
                f"mix failed to demonstrate the contrast"
            )
    return problems


def check_service_against(
    fresh: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 3.0,
    min_speedup: float | None = None,
) -> list[str]:
    """Compare a fresh loadgen run against a recorded baseline.

    Mirrors :func:`repro.bench.check_against`: refuses (raises
    :class:`ValueError`) on schema drift, and reports only
    slow-direction regressions beyond the (generous, cross-machine)
    ``tolerance``.  A fresh run with any failed request is always a
    problem, whatever the baseline says; ``min_speedup`` additionally
    enforces a hot/cold throughput floor.
    """
    fresh_schema = fresh.get("schema")
    base_schema = baseline.get("schema")
    if fresh_schema != base_schema:
        raise ValueError(
            f"cannot compare service bench documents across schemas: fresh "
            f"run is schema {fresh_schema!r}, baseline is schema "
            f"{base_schema!r}.  Regenerate the baseline with the current "
            f"code (python -m repro loadgen --output <baseline.json>) and "
            f"re-check."
        )
    problems: list[str] = []
    if fresh.get("errors"):
        problems.append(
            f"{fresh['errors']} request(s) failed "
            f"(first: {_first_failure(fresh)})"
        )
    for name, base_phase in baseline.get("phases", {}).items():
        fresh_phase = fresh.get("phases", {}).get(name)
        if fresh_phase is None:
            problems.append(f"phase {name!r} missing from the fresh run")
            continue
        b = base_phase.get("requests_per_s")
        got = fresh_phase.get("requests_per_s")
        if b and got and got < b / tolerance:
            problems.append(
                f"phase {name!r}: {got:,.1f} req/s < baseline "
                f"{b:,.1f} / {tolerance:g}"
            )
    if min_speedup is not None:
        speedup = fresh.get("hot_vs_cold_speedup")
        if not speedup or speedup < min_speedup:
            problems.append(
                f"hot/cold speedup {speedup!r} is below the "
                f"{min_speedup:g}x floor"
            )
    return problems


def _first_failure(doc: dict[str, Any]) -> str:
    for phase in doc.get("phases", {}).values():
        for failure in phase.get("failures", []):
            return failure
    return "no failure detail recorded"


def write_service_bench(path: str, doc: dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
