"""Closed-loop load generator for the simulation service.

Drives a running server (or an in-process one) with a configurable
client mix and records served-request throughput in
``BENCH_service_throughput.json`` — the serving counterpart of
``repro.bench``'s engine-throughput document, in the same schema-2
style (header with ``schema`` / ``python`` / ``platform`` /
``cpu_count`` / ``revision``; ``--check`` refuses cross-schema
comparisons).

The run has two phases, each a closed loop (every client issues its
next request the moment the previous response lands):

* ``cold`` — every request carries a unique content key (the access
  function's exponent is perturbed per request), so every request is
  computed: this measures the service's raw compute-bound ceiling
  against a cold cache.
* ``hot`` — a ``hot_ratio`` fraction of requests (default 0.9) draws
  from a small fixed hot-key set, the rest stay unique: this measures
  the cache-accelerated serving rate.  ``hot_vs_cold_speedup`` is the
  ratio of the two phases' requests/s — the number the ROADMAP's
  "heavy traffic" goal turns on.

Request streams are seeded (`random.Random`), so two runs against
equivalent servers issue the identical request sequences.  A 429 from
the server's backpressure is not an error: the client honours
``Retry-After`` and retries, counting the rejection.
"""

from __future__ import annotations

import http.client
import json
import os
import platform
import random
import socket
import threading
import time
import urllib.parse
from typing import Any

__all__ = [
    "SERVICE_BENCH_SCHEMA",
    "run_loadgen",
    "check_service_against",
    "write_service_bench",
]

#: service bench document schema (styled after ``repro.bench``'s
#: schema 2: same provenance header, phases instead of workloads)
SERVICE_BENCH_SCHEMA = 2

#: engines in the request mix (every family; ``direct`` keeps the guest
#: reference in the traffic)
_MIX_ENGINES = ("hmm", "bt", "brent", "direct")

#: programs in the request mix (delivery-heavy, cheap to build at v=16)
_MIX_PROGRAMS = ("sort", "fft-rec")


#: guest width of the mix (big enough that computing a request costs
#: milliseconds — the hot/cold contrast must measure caching, not HTTP)
_MIX_V = 64


def _hot_set(count: int) -> list[dict[str, Any]]:
    """The fixed hot-key request set: ``count`` distinct documents."""
    hot = []
    for i in range(count):
        hot.append({
            "engine": _MIX_ENGINES[i % len(_MIX_ENGINES)],
            "program": _MIX_PROGRAMS[(i // len(_MIX_ENGINES)) % len(_MIX_PROGRAMS)],
            "v": _MIX_V,
            "mu": 8,
            "f": f"x^0.{50 + i}",
            "trace": "counters",
        })
    return hot


def _cold_request(index: int) -> dict[str, Any]:
    """A request whose content key no other request shares.

    The access-function exponent is perturbed per index —
    ``x^0.100001``, ``x^0.100002``, ... — so every cold request hashes
    to a fresh :func:`~repro.resilience.ledger.cell_key` and must be
    computed.
    """
    return {
        "engine": _MIX_ENGINES[index % len(_MIX_ENGINES)],
        "program": _MIX_PROGRAMS[index % len(_MIX_PROGRAMS)],
        "v": _MIX_V,
        "mu": 8,
        "f": f"x^0.{100001 + index}",
        "trace": "counters",
    }


class _Client(threading.Thread):
    """One closed-loop client: issue requests back-to-back, tally paths.

    Uses one persistent (keep-alive) HTTP/1.1 connection for its whole
    stream — per-request TCP setup would otherwise put a floor under
    the cache-hit serving rate and understate the hot/cold contrast.
    """

    def __init__(
        self,
        url: str,
        requests: list[dict[str, Any]],
        batch: int = 1,
    ):
        super().__init__(daemon=True)
        parsed = urllib.parse.urlsplit(url)
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.requests = requests
        self.batch = max(1, batch)
        self.served: dict[str, int] = {}
        self.rejected = 0
        self.errors = 0
        self.failures: list[str] = []
        self._conn: http.client.HTTPConnection | None = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=120.0
            )
            self._conn.connect()
            # mirror the server's TCP_NODELAY: a request is also two
            # small writes (headers, JSON body), and Nagle + delayed
            # ACK would floor every round trip at tens of milliseconds
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def _reconnect(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _tally(self, response: dict[str, Any]) -> None:
        for item in response.get("results", [response]):
            served = item.get("served", "?")
            self.served[served] = self.served.get(served, 0) + 1

    def _issue(self, path: str, body: Any) -> None:
        payload = json.dumps(body).encode("utf-8")
        transport_failures = 0
        while True:
            try:
                conn = self._connect()
                conn.request(
                    "POST", path, body=payload,
                    headers={"Content-Type": "application/json"},
                )
                resp = conn.getresponse()
                raw = resp.read()
                status = resp.status
                retry_after = resp.headers.get("Retry-After")
            except (http.client.HTTPException, OSError) as exc:
                self._reconnect()
                transport_failures += 1
                if transport_failures > 3:
                    self.errors += 1
                    if len(self.failures) < 8:
                        self.failures.append(f"transport: {exc!r}")
                    return
                continue
            try:
                doc = json.loads(raw) if raw else {}
            except ValueError:
                doc = {"error": raw.decode("utf-8", "replace")}
            if status == 200:
                self._tally(doc)
                return
            if status == 429:
                self.rejected += 1
                time.sleep(min(float(retry_after or 0.1), 0.5))
                continue
            self.errors += 1
            if len(self.failures) < 8:
                self.failures.append(f"{status}: {doc.get('error', doc)}")
            return

    def run(self) -> None:
        try:
            if self.batch == 1:
                for request in self.requests:
                    self._issue("/run", request)
            else:
                for start in range(0, len(self.requests), self.batch):
                    chunk = self.requests[start : start + self.batch]
                    self._issue("/batch", {"requests": chunk})
        finally:
            self._reconnect()


def _run_phase(
    url: str,
    name: str,
    clients: int,
    requests_per_client: int,
    hot_ratio: float,
    hot_keys: int,
    batch: int,
    seed: int,
    cold_base: int,
    echo=None,
) -> tuple[dict[str, Any], int]:
    """Run one closed-loop phase; returns ``(phase doc, cold keys used)``."""
    hot = _hot_set(hot_keys)
    cold_index = cold_base
    workers: list[_Client] = []
    for c in range(clients):
        rng = random.Random(seed * 1000 + c)
        stream = []
        for _ in range(requests_per_client):
            if hot_ratio > 0 and rng.random() < hot_ratio:
                stream.append(hot[rng.randrange(len(hot))])
            else:
                stream.append(_cold_request(cold_index))
                cold_index += 1
        workers.append(_Client(url, stream, batch=batch))
    t0 = time.perf_counter()
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    wall = time.perf_counter() - t0
    total = clients * requests_per_client
    served: dict[str, int] = {}
    rejected = 0
    errors = 0
    failures: list[str] = []
    for w in workers:
        for k, v in w.served.items():
            served[k] = served.get(k, 0) + v
        rejected += w.rejected
        errors += w.errors
        failures.extend(w.failures)
    doc = {
        "requests": total,
        "wall_s": wall,
        "requests_per_s": total / wall if wall > 0 else None,
        "hot_ratio": hot_ratio,
        "served": {k: served[k] for k in sorted(served)},
        "rejected_429": rejected,
        "errors": errors,
    }
    if failures:
        doc["failures"] = failures[:8]
    if echo:
        rps = doc["requests_per_s"]
        echo(
            f"  {name:5s} {total:>5d} requests in {wall:7.2f}s  "
            f"{rps:>8,.1f} req/s  (served: "
            + ", ".join(f"{k}={v}" for k, v in sorted(served.items()))
            + (f", rejected={rejected}" if rejected else "")
            + (f", ERRORS={errors}" if errors else "")
            + ")"
        )
    return doc, cold_index - cold_base


def run_loadgen(
    url: str | None = None,
    clients: int = 4,
    requests_per_client: int = 50,
    hot_ratio: float = 0.9,
    hot_keys: int = 8,
    batch: int = 1,
    seed: int = 7,
    smoke: bool = False,
    jobs: int = 1,
    cache_capacity: int | None = None,
    queue_limit: int | None = None,
    echo=None,
) -> dict[str, Any]:
    """Run the two-phase load and return the bench document.

    With ``url=None`` an in-process
    :class:`~repro.service.server.ServiceServer` is started on an
    ephemeral port (and torn down afterwards) — the standalone mode the
    checked-in ``BENCH_service_throughput.json`` is generated in.  With
    a ``url``, an already-running server is driven — the CI mode
    (``python -m repro serve`` + ``python -m repro loadgen --url ...``);
    note the cold phase is only *cold* against a freshly started server.
    ``smoke`` shrinks the request counts for CI without changing the
    phase structure.
    """
    from repro.bench import _git_revision

    if smoke:
        clients = min(clients, 2)
        requests_per_client = min(requests_per_client, 8)
        hot_keys = min(hot_keys, 4)
    produced_by = "python -m repro loadgen"
    if smoke:
        produced_by += " --smoke"
    doc: dict[str, Any] = {
        "schema": SERVICE_BENCH_SCHEMA,
        "produced_by": produced_by,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "revision": _git_revision(),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "hot_ratio": hot_ratio,
        "hot_keys": hot_keys,
        "batch": batch,
        "seed": seed,
        "phases": {},
    }
    server = None
    if url is None:
        from repro.service.server import ServiceServer, SimService

        kwargs: dict[str, Any] = {"jobs": jobs}
        if cache_capacity is not None:
            kwargs["cache_capacity"] = cache_capacity
        if queue_limit is not None:
            kwargs["queue_limit"] = queue_limit
        server = ServiceServer(SimService(**kwargs))
        url = server.url
        doc["in_process_server"] = True
    try:
        if echo:
            echo(f"load-generating against {url} "
                 f"({clients} client(s) x {requests_per_client} request(s))")
        cold, cold_used = _run_phase(
            url, "cold", clients, requests_per_client,
            hot_ratio=0.0, hot_keys=hot_keys, batch=batch,
            seed=seed, cold_base=0, echo=echo,
        )
        hot, _ = _run_phase(
            url, "hot", clients, requests_per_client,
            hot_ratio=hot_ratio, hot_keys=hot_keys, batch=batch,
            seed=seed + 1, cold_base=cold_used, echo=echo,
        )
    finally:
        if server is not None:
            server.close()
    doc["phases"]["cold"] = cold
    doc["phases"]["hot"] = hot
    cold_rps = cold["requests_per_s"]
    hot_rps = hot["requests_per_s"]
    doc["hot_vs_cold_speedup"] = (
        hot_rps / cold_rps if cold_rps and hot_rps else None
    )
    doc["errors"] = cold["errors"] + hot["errors"]
    if echo and doc["hot_vs_cold_speedup"]:
        echo(f"  hot/cold speedup: {doc['hot_vs_cold_speedup']:.1f}x")
    return doc


def check_service_against(
    fresh: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 3.0,
    min_speedup: float | None = None,
) -> list[str]:
    """Compare a fresh loadgen run against a recorded baseline.

    Mirrors :func:`repro.bench.check_against`: refuses (raises
    :class:`ValueError`) on schema drift, and reports only
    slow-direction regressions beyond the (generous, cross-machine)
    ``tolerance``.  A fresh run with any failed request is always a
    problem, whatever the baseline says; ``min_speedup`` additionally
    enforces a hot/cold throughput floor.
    """
    fresh_schema = fresh.get("schema")
    base_schema = baseline.get("schema")
    if fresh_schema != base_schema:
        raise ValueError(
            f"cannot compare service bench documents across schemas: fresh "
            f"run is schema {fresh_schema!r}, baseline is schema "
            f"{base_schema!r}.  Regenerate the baseline with the current "
            f"code (python -m repro loadgen --output <baseline.json>) and "
            f"re-check."
        )
    problems: list[str] = []
    if fresh.get("errors"):
        problems.append(
            f"{fresh['errors']} request(s) failed "
            f"(first: {_first_failure(fresh)})"
        )
    for name, base_phase in baseline.get("phases", {}).items():
        fresh_phase = fresh.get("phases", {}).get(name)
        if fresh_phase is None:
            problems.append(f"phase {name!r} missing from the fresh run")
            continue
        b = base_phase.get("requests_per_s")
        got = fresh_phase.get("requests_per_s")
        if b and got and got < b / tolerance:
            problems.append(
                f"phase {name!r}: {got:,.1f} req/s < baseline "
                f"{b:,.1f} / {tolerance:g}"
            )
    if min_speedup is not None:
        speedup = fresh.get("hot_vs_cold_speedup")
        if not speedup or speedup < min_speedup:
            problems.append(
                f"hot/cold speedup {speedup!r} is below the "
                f"{min_speedup:g}x floor"
            )
    return problems


def _first_failure(doc: dict[str, Any]) -> str:
    for phase in doc.get("phases", {}).values():
        for failure in phase.get("failures", []):
            return failure
    return "no failure detail recorded"


def write_service_bench(path: str, doc: dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
