"""Closed-loop load generator for the simulation service.

Drives a running server (or an in-process one) with a configurable
client mix and records served-request throughput in
``BENCH_service_throughput.json`` — the serving counterpart of
``repro.bench``'s engine-throughput document, in the same schema-2
style (header with ``schema`` / ``python`` / ``platform`` /
``cpu_count`` / ``revision``; ``--check`` refuses cross-schema
comparisons).

The run has two phases, each a closed loop (every client issues its
next request the moment the previous response lands):

* ``cold`` — every request carries a unique content key (the access
  function's exponent is perturbed per request), so every request is
  computed: this measures the service's raw compute-bound ceiling
  against a cold cache.
* ``hot`` — a ``hot_ratio`` fraction of requests (default 0.9) draws
  from a small fixed hot-key set, the rest stay unique: this measures
  the cache-accelerated serving rate.  ``hot_vs_cold_speedup`` is the
  ratio of the two phases' requests/s — the number the ROADMAP's
  "heavy traffic" goal turns on.

Request streams are seeded (`random.Random`), so two runs against
equivalent servers issue the identical request sequences.  A 429 from
the server's backpressure is not an error: the client honours
``Retry-After`` and retries, counting the rejection.  Every non-2xx
response is parsed through the unified error envelope
(``{"error": {"code", "message", "retry_after_s"}}``).

:func:`run_job_bench` is the jobs-mode driver (``loadgen --job-mode``):
it measures interactive ``/v1/run`` p50 latency with and without a
background sweep job competing for the worker pool, the job's
time-to-complete, and — after stopping the job runner mid-job and
re-adopting on a fresh service over the same jobs directory — whether
the resumed job's result document is identical to an uninterrupted
run's.
"""

from __future__ import annotations

import http.client
import json
import os
import platform
import random
import socket
import threading
import time
import urllib.parse
from typing import Any

__all__ = [
    "SERVICE_BENCH_SCHEMA",
    "run_loadgen",
    "run_job_bench",
    "check_service_against",
    "write_service_bench",
]

#: service bench document schema (styled after ``repro.bench``'s
#: schema 2: same provenance header, phases instead of workloads)
SERVICE_BENCH_SCHEMA = 2

#: engines in the request mix (every family; ``direct`` keeps the guest
#: reference in the traffic)
_MIX_ENGINES = ("hmm", "bt", "brent", "direct")

#: programs in the request mix (delivery-heavy, cheap to build at v=16)
_MIX_PROGRAMS = ("sort", "fft-rec")


#: guest width of the mix (big enough that computing a request costs
#: milliseconds — the hot/cold contrast must measure caching, not HTTP)
_MIX_V = 64


def _hot_set(count: int) -> list[dict[str, Any]]:
    """The fixed hot-key request set: ``count`` distinct documents."""
    hot = []
    for i in range(count):
        hot.append({
            "engine": _MIX_ENGINES[i % len(_MIX_ENGINES)],
            "program": _MIX_PROGRAMS[(i // len(_MIX_ENGINES)) % len(_MIX_PROGRAMS)],
            "v": _MIX_V,
            "mu": 8,
            "f": f"x^0.{50 + i}",
            "trace": "counters",
        })
    return hot


def _cold_request(index: int) -> dict[str, Any]:
    """A request whose content key no other request shares.

    The access-function exponent is perturbed per index —
    ``x^0.100001``, ``x^0.100002``, ... — so every cold request hashes
    to a fresh :func:`~repro.resilience.ledger.cell_key` and must be
    computed.
    """
    return {
        "engine": _MIX_ENGINES[index % len(_MIX_ENGINES)],
        "program": _MIX_PROGRAMS[index % len(_MIX_PROGRAMS)],
        "v": _MIX_V,
        "mu": 8,
        "f": f"x^0.{100001 + index}",
        "trace": "counters",
    }


class _Client(threading.Thread):
    """One closed-loop client: issue requests back-to-back, tally paths.

    Uses one persistent (keep-alive) HTTP/1.1 connection for its whole
    stream — per-request TCP setup would otherwise put a floor under
    the cache-hit serving rate and understate the hot/cold contrast.
    """

    def __init__(
        self,
        url: str,
        requests: list[dict[str, Any]],
        batch: int = 1,
    ):
        super().__init__(daemon=True)
        parsed = urllib.parse.urlsplit(url)
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.requests = requests
        self.batch = max(1, batch)
        self.served: dict[str, int] = {}
        self.rejected = 0
        self.errors = 0
        self.failures: list[str] = []
        self.latencies: list[float] = []
        self._conn: http.client.HTTPConnection | None = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=120.0
            )
            self._conn.connect()
            # mirror the server's TCP_NODELAY: a request is also two
            # small writes (headers, JSON body), and Nagle + delayed
            # ACK would floor every round trip at tens of milliseconds
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def _reconnect(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _tally(self, response: dict[str, Any]) -> None:
        for item in response.get("results", [response]):
            served = item.get("served", "?")
            self.served[served] = self.served.get(served, 0) + 1

    def _issue(self, path: str, body: Any) -> None:
        payload = json.dumps(body).encode("utf-8")
        transport_failures = 0
        t0 = time.perf_counter()
        while True:
            try:
                conn = self._connect()
                conn.request(
                    "POST", path, body=payload,
                    headers={"Content-Type": "application/json"},
                )
                resp = conn.getresponse()
                raw = resp.read()
                status = resp.status
                retry_after = resp.headers.get("Retry-After")
            except (http.client.HTTPException, OSError) as exc:
                self._reconnect()
                transport_failures += 1
                if transport_failures > 3:
                    self.errors += 1
                    if len(self.failures) < 8:
                        self.failures.append(f"transport: {exc!r}")
                    return
                continue
            try:
                doc = json.loads(raw) if raw else {}
            except ValueError:
                doc = {}
            if status == 200:
                # latency includes any 429 backoff the request rode out
                # — it is the latency the client experienced
                self.latencies.append(time.perf_counter() - t0)
                self._tally(doc)
                return
            envelope = doc.get("error")
            if not isinstance(envelope, dict):  # non-envelope (proxy?) error
                envelope = {
                    "code": "unknown",
                    "message": raw.decode("utf-8", "replace"),
                }
            if status == 429:
                self.rejected += 1
                backoff = envelope.get("retry_after_s") or retry_after
                time.sleep(min(float(backoff or 0.1), 0.5))
                continue
            self.errors += 1
            if len(self.failures) < 8:
                self.failures.append(
                    f"{status} {envelope.get('code', '?')}: "
                    f"{envelope.get('message', '')}"
                )
            return

    def run(self) -> None:
        try:
            if self.batch == 1:
                for request in self.requests:
                    self._issue("/v1/run", request)
            else:
                for start in range(0, len(self.requests), self.batch):
                    chunk = self.requests[start : start + self.batch]
                    self._issue("/v1/batch", {"requests": chunk})
        finally:
            self._reconnect()


def _percentile(values: list[float], q: float) -> float | None:
    """Nearest-rank percentile (small samples; no interpolation)."""
    if not values:
        return None
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, round(q * (len(ranked) - 1)))]


def _run_phase(
    url: str,
    name: str,
    clients: int,
    requests_per_client: int,
    hot_ratio: float,
    hot_keys: int,
    batch: int,
    seed: int,
    cold_base: int,
    echo=None,
) -> tuple[dict[str, Any], int]:
    """Run one closed-loop phase; returns ``(phase doc, cold keys used)``."""
    hot = _hot_set(hot_keys)
    cold_index = cold_base
    workers: list[_Client] = []
    for c in range(clients):
        rng = random.Random(seed * 1000 + c)
        stream = []
        for _ in range(requests_per_client):
            if hot_ratio > 0 and rng.random() < hot_ratio:
                stream.append(hot[rng.randrange(len(hot))])
            else:
                stream.append(_cold_request(cold_index))
                cold_index += 1
        workers.append(_Client(url, stream, batch=batch))
    t0 = time.perf_counter()
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    wall = time.perf_counter() - t0
    total = clients * requests_per_client
    served: dict[str, int] = {}
    rejected = 0
    errors = 0
    failures: list[str] = []
    latencies: list[float] = []
    for w in workers:
        for k, v in w.served.items():
            served[k] = served.get(k, 0) + v
        rejected += w.rejected
        errors += w.errors
        failures.extend(w.failures)
        latencies.extend(w.latencies)
    doc = {
        "requests": total,
        "wall_s": wall,
        "requests_per_s": total / wall if wall > 0 else None,
        "hot_ratio": hot_ratio,
        "served": {k: served[k] for k in sorted(served)},
        "rejected_429": rejected,
        "errors": errors,
        "latency_p50_s": _percentile(latencies, 0.50),
        "latency_p95_s": _percentile(latencies, 0.95),
    }
    if failures:
        doc["failures"] = failures[:8]
    if echo:
        rps = doc["requests_per_s"]
        echo(
            f"  {name:5s} {total:>5d} requests in {wall:7.2f}s  "
            f"{rps:>8,.1f} req/s  (served: "
            + ", ".join(f"{k}={v}" for k, v in sorted(served.items()))
            + (f", rejected={rejected}" if rejected else "")
            + (f", ERRORS={errors}" if errors else "")
            + ")"
        )
    return doc, cold_index - cold_base


def run_loadgen(
    url: str | None = None,
    clients: int = 4,
    requests_per_client: int = 50,
    hot_ratio: float = 0.9,
    hot_keys: int = 8,
    batch: int = 1,
    seed: int = 7,
    smoke: bool = False,
    jobs: int = 1,
    cache_capacity: int | None = None,
    queue_limit: int | None = None,
    echo=None,
) -> dict[str, Any]:
    """Run the two-phase load and return the bench document.

    With ``url=None`` an in-process
    :class:`~repro.service.server.ServiceServer` is started on an
    ephemeral port (and torn down afterwards) — the standalone mode the
    checked-in ``BENCH_service_throughput.json`` is generated in.  With
    a ``url``, an already-running server is driven — the CI mode
    (``python -m repro serve`` + ``python -m repro loadgen --url ...``);
    note the cold phase is only *cold* against a freshly started server.
    ``smoke`` shrinks the request counts for CI without changing the
    phase structure.
    """
    from repro.bench import _git_revision

    if smoke:
        clients = min(clients, 2)
        requests_per_client = min(requests_per_client, 8)
        hot_keys = min(hot_keys, 4)
    produced_by = "python -m repro loadgen"
    if smoke:
        produced_by += " --smoke"
    doc: dict[str, Any] = {
        "schema": SERVICE_BENCH_SCHEMA,
        "produced_by": produced_by,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "revision": _git_revision(),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "hot_ratio": hot_ratio,
        "hot_keys": hot_keys,
        "batch": batch,
        "seed": seed,
        "phases": {},
    }
    server = None
    if url is None:
        from repro.service.server import ServiceServer, SimService

        kwargs: dict[str, Any] = {"jobs": jobs}
        if cache_capacity is not None:
            kwargs["cache_capacity"] = cache_capacity
        if queue_limit is not None:
            kwargs["queue_limit"] = queue_limit
        server = ServiceServer(SimService(**kwargs))
        url = server.url
        doc["in_process_server"] = True
    try:
        if echo:
            echo(f"load-generating against {url} "
                 f"({clients} client(s) x {requests_per_client} request(s))")
        cold, cold_used = _run_phase(
            url, "cold", clients, requests_per_client,
            hot_ratio=0.0, hot_keys=hot_keys, batch=batch,
            seed=seed, cold_base=0, echo=echo,
        )
        hot, _ = _run_phase(
            url, "hot", clients, requests_per_client,
            hot_ratio=hot_ratio, hot_keys=hot_keys, batch=batch,
            seed=seed + 1, cold_base=cold_used, echo=echo,
        )
    finally:
        if server is not None:
            server.close()
    doc["phases"]["cold"] = cold
    doc["phases"]["hot"] = hot
    cold_rps = cold["requests_per_s"]
    hot_rps = hot["requests_per_s"]
    doc["hot_vs_cold_speedup"] = (
        hot_rps / cold_rps if cold_rps and hot_rps else None
    )
    doc["errors"] = cold["errors"] + hot["errors"]
    if echo and doc["hot_vs_cold_speedup"]:
        echo(f"  hot/cold speedup: {doc['hot_vs_cold_speedup']:.1f}x")
    return doc


def _wait_job(manager, job_id: str, timeout_s: float = 300.0) -> None:
    """Block until the job is terminal (the in-process polling loop)."""
    deadline = time.monotonic() + timeout_s
    while not manager.get(job_id).terminal:
        if time.monotonic() > deadline:
            raise RuntimeError(f"job {job_id} did not finish in {timeout_s}s")
        time.sleep(0.02)


def run_job_bench(
    clients: int = 2,
    requests_per_client: int = 16,
    hot_ratio: float = 0.9,
    hot_keys: int = 4,
    seed: int = 7,
    smoke: bool = False,
    jobs: int = 1,
    sizes: list[int] | None = None,
    echo=None,
) -> dict[str, Any]:
    """Measure batch-job interference on interactive serving latency.

    Three rounds, each against a fresh in-process server (fresh cache,
    fresh jobs directory), all issuing the identical seeded interactive
    request stream:

    1. **baseline** — interactive traffic only; records p50 latency.
    2. **with_job** — a touch-sweep job is enqueued first, then the same
       interactive stream runs while the job's cells compete for the
       worker pool through the :class:`~repro.service.scheduler.PoolGate`;
       records the contended p50 and the job's time-to-complete.
    3. **restart** — the same job is enqueued, the job runner is stopped
       after at least one cell checkpointed (the in-process equivalent
       of killing the server), and a new service over the same jobs
       directory re-adopts and finishes it; records total
       time-to-complete including the restart and whether the resumed
       result document equals round 2's uninterrupted one.

    ``p50_ratio`` (round 2 p50 / round 1 p50) is the acceptance number:
    the ROADMAP requires it within 2x.  ``results_identical`` must be
    ``True`` — the byte-identity contract under restart.
    """
    import shutil
    import tempfile

    from repro.bench import _git_revision
    from repro.service.server import ServiceServer, SimService

    if smoke:
        clients = min(clients, 2)
        requests_per_client = min(requests_per_client, 8)
        hot_keys = min(hot_keys, 4)
    if sizes is None:
        sizes = [1024, 2048, 4096, 8192] if smoke else (
            [4096, 8192, 16384, 32768, 65536]
        )
    job_body = {"kind": "touch", "sizes": sizes, "f": "x^0.5"}
    doc: dict[str, Any] = {
        "schema": SERVICE_BENCH_SCHEMA,
        "produced_by": "python -m repro loadgen --job-mode"
        + (" --smoke" if smoke else ""),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "revision": _git_revision(),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "hot_ratio": hot_ratio,
        "hot_keys": hot_keys,
        "seed": seed,
        "job": job_body,
        "rounds": {},
    }
    errors = 0

    def interactive_round(url: str, name: str) -> dict[str, Any]:
        phase, _ = _run_phase(
            url, name, clients, requests_per_client,
            hot_ratio=hot_ratio, hot_keys=hot_keys, batch=1,
            seed=seed, cold_base=0, echo=echo,
        )
        return phase

    # round 1: no batch job anywhere near the pool
    with ServiceServer(SimService(jobs=jobs)) as server:
        baseline = interactive_round(server.url, "base")
    errors += baseline["errors"]
    doc["rounds"]["baseline"] = baseline

    # round 2: the job competes with the identical interactive stream
    jobs_dir = tempfile.mkdtemp(prefix="repro-jobbench-")
    try:
        service = SimService(jobs=jobs, jobs_dir=jobs_dir)
        with ServiceServer(service) as server:
            manager = service.job_manager
            t0 = time.monotonic()
            job = manager.submit_json(dict(job_body))
            contended = interactive_round(server.url, "j+int")
            _wait_job(manager, job.id)
            job_s = time.monotonic() - t0
            uninterrupted = manager.result(job.id)
        errors += contended["errors"]
        doc["rounds"]["with_job"] = contended
        doc["job_s"] = job_s
    finally:
        shutil.rmtree(jobs_dir, ignore_errors=True)

    # round 3: stop the runner mid-job, re-adopt, finish from checkpoint
    jobs_dir = tempfile.mkdtemp(prefix="repro-jobbench-")
    try:
        service = SimService(jobs=jobs, jobs_dir=jobs_dir)
        manager = service.job_manager
        t0 = time.monotonic()
        job = manager.submit_json(dict(job_body))
        deadline = time.monotonic() + 300.0
        while (
            manager.get(job.id).cells_done < 1
            and not manager.get(job.id).terminal
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        interrupted = not manager.get(job.id).terminal
        service.close()  # runner stops at the next cell edge
        service = SimService(jobs=jobs, jobs_dir=jobs_dir)  # re-adopts
        manager = service.job_manager
        _wait_job(manager, job.id)
        doc["job_with_restart_s"] = time.monotonic() - t0
        doc["restart_interrupted_mid_job"] = interrupted
        resumed = manager.result(job.id)
        service.close()
    finally:
        shutil.rmtree(jobs_dir, ignore_errors=True)

    doc["results_identical"] = resumed == uninterrupted
    base_p50 = baseline.get("latency_p50_s")
    contended_p50 = contended.get("latency_p50_s")
    doc["p50_no_job_s"] = base_p50
    doc["p50_with_job_s"] = contended_p50
    doc["p50_ratio"] = (
        contended_p50 / base_p50 if base_p50 and contended_p50 else None
    )
    doc["errors"] = errors
    if echo:
        if doc["p50_ratio"]:
            echo(
                f"  interactive p50 {base_p50 * 1e3:.1f}ms alone -> "
                f"{contended_p50 * 1e3:.1f}ms beside the job "
                f"({doc['p50_ratio']:.2f}x)"
            )
        echo(
            f"  job: {doc['job_s']:.2f}s uninterrupted, "
            f"{doc['job_with_restart_s']:.2f}s with an injected restart "
            f"(results identical: {doc['results_identical']})"
        )
    return doc


def check_service_against(
    fresh: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 3.0,
    min_speedup: float | None = None,
) -> list[str]:
    """Compare a fresh loadgen run against a recorded baseline.

    Mirrors :func:`repro.bench.check_against`: refuses (raises
    :class:`ValueError`) on schema drift, and reports only
    slow-direction regressions beyond the (generous, cross-machine)
    ``tolerance``.  A fresh run with any failed request is always a
    problem, whatever the baseline says; ``min_speedup`` additionally
    enforces a hot/cold throughput floor.
    """
    fresh_schema = fresh.get("schema")
    base_schema = baseline.get("schema")
    if fresh_schema != base_schema:
        raise ValueError(
            f"cannot compare service bench documents across schemas: fresh "
            f"run is schema {fresh_schema!r}, baseline is schema "
            f"{base_schema!r}.  Regenerate the baseline with the current "
            f"code (python -m repro loadgen --output <baseline.json>) and "
            f"re-check."
        )
    problems: list[str] = []
    if fresh.get("errors"):
        problems.append(
            f"{fresh['errors']} request(s) failed "
            f"(first: {_first_failure(fresh)})"
        )
    for name, base_phase in baseline.get("phases", {}).items():
        fresh_phase = fresh.get("phases", {}).get(name)
        if fresh_phase is None:
            problems.append(f"phase {name!r} missing from the fresh run")
            continue
        b = base_phase.get("requests_per_s")
        got = fresh_phase.get("requests_per_s")
        if b and got and got < b / tolerance:
            problems.append(
                f"phase {name!r}: {got:,.1f} req/s < baseline "
                f"{b:,.1f} / {tolerance:g}"
            )
    if min_speedup is not None:
        speedup = fresh.get("hot_vs_cold_speedup")
        if not speedup or speedup < min_speedup:
            problems.append(
                f"hot/cold speedup {speedup!r} is below the "
                f"{min_speedup:g}x floor"
            )
    return problems


def _first_failure(doc: dict[str, Any]) -> str:
    for phase in doc.get("phases", {}).values():
        for failure in phase.get("failures", []):
            return failure
    return "no failure detail recorded"


def write_service_bench(path: str, doc: dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
