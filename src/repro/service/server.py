"""The HTTP front end: a stdlib ``ThreadingHTTPServer`` over the scheduler.

The surface is versioned under ``/v1`` (all JSON):

* ``POST /v1/run`` — body is one
  :class:`~repro.service.scheduler.SimRequest` document (``{"engine":
  ..., "program": ..., "v": ..., ...}``); response carries the
  content-addressed ``key``, the ``served`` path (``computed`` |
  ``cached`` | ``coalesced``) and the engine ``result`` document.
* ``POST /v1/batch`` — ``{"requests": [...]}``; the requests are served
  sequentially on this connection's handler thread (each one still
  coalesces with, and is cached for, every other connection), response
  is ``{"results": [...]}`` in request order.
* ``POST /v1/plan`` — same body as ``/v1/run``; returns the planner's
  cost prediction (charged words, wall time, error bars), the chosen
  engine/config, and whether admission would accept it right now —
  without running anything.  Requires a calibration profile
  (``--calibration``); see ``docs/planner.md``.
* ``POST /v1/jobs`` — enqueue a named sweep as a background *job* (body
  is one :class:`~repro.service.jobs.JobSpec` document plus an optional
  ``priority``); returns ``202`` with the job's status document.
* ``GET /v1/jobs`` / ``GET /v1/jobs/<id>`` — job list / one job's
  status with per-cell progress.
* ``GET /v1/jobs/<id>/events`` — chunked JSON-lines progress stream,
  fed from the job ledger's append hook; ends when the job reaches a
  terminal state.
* ``GET /v1/jobs/<id>/result`` — the finished document (``409`` while
  the job is still running); byte-identical to the equivalent
  uninterrupted CLI sweep.
* ``DELETE /v1/jobs/<id>`` — cancel (takes effect at a cell edge).
* ``GET /v1/healthz`` — liveness plus the engine/program inventories.
* ``GET /v1/metrics`` — cache counters + gauges, queue gauges, request
  counters, job/gate gauges and the host-side recovery counters.

The pre-versioning unprefixed paths (``/run``, ``/batch``, ...) remain
as deprecated aliases: same handlers, same responses, plus a
``Deprecation: true`` response header (and a ``deprecated_requests``
counter under ``/v1/metrics``).  Routing is one declarative table
(:data:`ROUTES`) shared by every method — there is no per-endpoint
if/elif chain to keep in sync.

Failure mapping — every error status carries the same envelope,
``{"error": {"code", "message", "retry_after_s"}}`` (see
:mod:`repro.service.errors`): a malformed body or unknown
engine/program/function is ``400 bad_request``; an unknown path is
``404 not_found``; an oversized body is ``413 payload_too_large`` (the
connection closes without reading the body); a full admission queue is
``429 queue_full`` with a ``Retry-After`` header; a cost-aware shed
(tenant budget or global predicted-cost ceiling, planner-enabled
servers only) is ``429 budget_exceeded`` with ``predicted_cost`` /
``budget_remaining`` / ``scope`` beside the base envelope keys (the
``X-Tenant`` request header names the tenant); job-lifecycle
conflicts are ``409``; anything else is ``500``.  Worker deaths and
task timeouts are *not* failures — the scheduler retries them via the
resilience machinery, and their traces appear in ``/v1/metrics`` under
``recovery``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from dataclasses import replace

from repro.engines import ENGINES, FUNCTION_HELP, PROGRAMS
from repro.obs.counters import Counters
from repro.resilience import recovery
from repro.service.cache import DEFAULT_CAPACITY, ResultCache
from repro.service.errors import ApiError, error_envelope
from repro.service.jobs import JobManager
from repro.service.planner import DEFAULT_TENANT, BudgetExceeded, Planner
from repro.service.scheduler import (
    DEFAULT_QUEUE_LIMIT,
    SERVICE_SCHEMA,
    PoolGate,
    QueueFull,
    Scheduler,
    parse_run_request,
)

__all__ = [
    "API_VERSION",
    "ROUTES",
    "JsonApiHandler",
    "SimService",
    "ServiceServer",
    "make_server",
    "serve",
]

#: the current (only) API surface version; paths live under ``/v1``
API_VERSION = "v1"

#: default TCP port (8173 = "BSP" on a phone keypad, roughly)
DEFAULT_PORT = 8173

#: request bodies above this are rejected outright (1 MiB is orders of
#: magnitude beyond any valid batch)
MAX_BODY_BYTES = 1 << 20

#: streaming marker: a route handler that already wrote its own
#: response (the events stream) returns this instead of a document
_STREAMED = object()


class SimService:
    """The served application: cache + scheduler + jobs, HTTP-agnostic.

    Separating the application from the socket machinery keeps the
    serving logic callable in-process (tests, the in-process loadgen
    mode) with byte-identical behaviour to the HTTP path.

    With a ``jobs_dir`` the service also runs a
    :class:`~repro.service.jobs.JobManager`: long sweeps are enqueued as
    background jobs, checkpointed per cell, and re-adopted after a
    restart on the same directory.  Interactive requests keep pool
    precedence over batch cells through the shared
    :class:`~repro.service.scheduler.PoolGate`.
    """

    def __init__(
        self,
        cache_capacity: int = DEFAULT_CAPACITY,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        jobs: int = 1,
        ledger=None,
        retry_after_s: float = 1.0,
        jobs_dir: str | None = None,
        max_batch_wait_s: float = 2.0,
        identity: dict[str, Any] | None = None,
        planner: Planner | None = None,
    ):
        #: optional shard identity (e.g. ``{"shard": 0, "ledger": ...}``)
        #: surfaced in healthz/metrics so a router can tell shards apart
        self.identity = identity
        self.gate = PoolGate(max_batch_wait_s=max_batch_wait_s)
        self.cache = ResultCache(cache_capacity, ledger=ledger)
        self.planner = planner
        self.scheduler = Scheduler(
            self.cache,
            parallel=jobs,
            queue_limit=queue_limit,
            retry_after_s=retry_after_s,
            gate=self.gate,
            planner=planner,
        )
        self.http_counters = Counters()
        self.job_manager: JobManager | None = None
        if jobs_dir is not None:
            self.job_manager = JobManager(
                jobs_dir, parallel=jobs, gate=self.gate, cache=self.cache
            )

    def _jobs(self) -> JobManager:
        if self.job_manager is None:
            raise ApiError(
                400, "jobs_disabled",
                "this server has no jobs directory; restart it with "
                "--jobs-dir to enable the jobs API",
            )
        return self.job_manager

    # ------------------------------------------------------------ handlers
    def _resolve(self, body: Any):
        """Validate one request document, letting the planner fill the
        engine when it is unset (absent or the explicit ``"auto"``).

        Returns ``(request, decision)`` — ``decision`` is ``None``
        exactly when no planner is configured.  Without a planner,
        ``"auto"`` and an absent engine both resolve to the service
        default (``vec``), matching pre-planner behaviour.
        """
        engine_unset = isinstance(body, dict) and (
            "engine" not in body or body.get("engine") == "auto"
        )
        if isinstance(body, dict) and body.get("engine") == "auto":
            body = {k: v for k, v in body.items() if k != "engine"}
        request = parse_run_request(body)
        if self.planner is None:
            return request, None
        decision = self.planner.plan(request, engine_unset=engine_unset)
        if decision.engine != request.engine:
            request = replace(request, engine=decision.engine)
        return request, decision

    def handle_run(
        self, body: Any, tenant: str = DEFAULT_TENANT
    ) -> dict[str, Any]:
        """Serve one request document; raises ``ValueError``/``QueueFull``."""
        request, decision = self._resolve(body)
        key, doc, served = self.scheduler.submit(
            request, tenant=tenant, decision=decision
        )
        return {"key": key, "served": served, "result": doc}

    def handle_batch(
        self, body: Any, tenant: str = DEFAULT_TENANT
    ) -> dict[str, Any]:
        """Serve a batch document: ``{"requests": [...]}`` -> results."""
        if not isinstance(body, dict) or "requests" not in body:
            raise ValueError(
                'batch body must be a JSON object with a "requests" list'
            )
        requests = body["requests"]
        if not isinstance(requests, list) or not requests:
            raise ValueError('"requests" must be a non-empty list')
        # validate (and plan) everything first: a 400 must not
        # half-execute a batch
        resolved = [self._resolve(doc) for doc in requests]
        results = []
        for request, decision in resolved:
            key, doc, served = self.scheduler.submit(
                request, tenant=tenant, decision=decision
            )
            results.append({"key": key, "served": served, "result": doc})
        return {"results": results}

    def handle_plan(
        self, body: Any, tenant: str = DEFAULT_TENANT
    ) -> dict[str, Any]:
        """``POST /v1/plan``: predict and decide without running anything."""
        if self.planner is None:
            raise ApiError(
                400, "planner_disabled",
                "this server has no calibration profile; run "
                "`python -m repro calibrate` and restart with "
                "--calibration to enable the planner",
            )
        request, decision = self._resolve(body)
        plan_doc = decision.to_json()
        prediction = plan_doc.pop("prediction")
        return {
            "request": request.to_json(),
            "key": request.key(),
            "plan": plan_doc,
            "prediction": prediction,
            "admission": self.planner.probe(tenant, decision),
        }

    def handle_jobs_submit(self, body: Any) -> dict[str, Any]:
        """Validate, persist and enqueue one job; returns its status doc."""
        return self._jobs().submit_json(body).status_doc()

    def handle_jobs_list(self) -> dict[str, Any]:
        return {"jobs": self._jobs().list()}

    def handle_job_status(self, job_id: str) -> dict[str, Any]:
        return self._jobs().get(job_id).status_doc()

    def handle_job_result(self, job_id: str) -> Any:
        return self._jobs().result(job_id)

    def handle_job_cancel(self, job_id: str) -> dict[str, Any]:
        return self._jobs().cancel(job_id).status_doc()

    def job_events(self, job_id: str):
        """The chunk-streamed event iterator for one job (404s eagerly)."""
        manager = self._jobs()
        manager.get(job_id)  # raise not_found before any bytes go out
        return manager.stream(job_id)

    def healthz(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "ok": True,
            "schema": SERVICE_SCHEMA,
            "api": API_VERSION,
            "jobs_enabled": self.job_manager is not None,
            "engines": sorted(ENGINES),
            "programs": sorted(PROGRAMS),
            "functions": FUNCTION_HELP,
        }
        if self.identity is not None:
            doc["shard"] = self.identity
        return doc

    def metrics(self) -> dict[str, Any]:
        """The ``GET /v1/metrics`` document (all sections, one scrape)."""
        requests = {
            "admitted": 0,
            "served_computed": 0,
            "served_cached": 0,
            "served_coalesced": 0,
            "rejected": 0,
            "errors": 0,
        }
        requests.update(self.scheduler.counters.snapshot())
        http = {"deprecated_requests": 0}
        http.update(self.http_counters.snapshot())
        if self.job_manager is not None:
            jobs_section = self.job_manager.gauges()
        else:
            jobs_section = {"enabled": False, "gate": self.gate.gauges()}
        if self.planner is not None:
            planner_section: dict[str, Any] = {"enabled": True}
            planner_section.update(self.planner.gauges())
        else:
            planner_section = {"enabled": False}
        from repro.sim.hmm_vec import plan_cache_info

        doc: dict[str, Any] = {
            "schema": SERVICE_SCHEMA,
            "api": API_VERSION,
            "cache": self.cache.gauges(),
            "queue": self.scheduler.gauges(),
            "planner": planner_section,
            "requests": requests,
            "jobs": jobs_section,
            "http": http,
            "recovery": recovery.counters(),
            "kernel": {"plan_cache": plan_cache_info()},
        }
        if self.identity is not None:
            doc["shard"] = self.identity
        return doc

    def close(self) -> None:
        """Stop the job runner (manifests stay; a restart re-adopts)."""
        if self.job_manager is not None:
            self.job_manager.close()


#: the whole routing surface: ``(method, path segments, handler name)``.
#: ``None`` segments are wildcards whose values are passed to the
#: handler in order.  Paths are matched twice — under ``/v1`` and bare
#: (the deprecated pre-versioning aliases).
ROUTES: tuple[tuple[str, tuple[str | None, ...], str], ...] = (
    ("GET", ("healthz",), "ep_healthz"),
    ("GET", ("metrics",), "ep_metrics"),
    ("POST", ("run",), "ep_run"),
    ("POST", ("batch",), "ep_batch"),
    ("POST", ("plan",), "ep_plan"),
    ("POST", ("jobs",), "ep_jobs_submit"),
    ("GET", ("jobs",), "ep_jobs_list"),
    ("GET", ("jobs", None), "ep_job_status"),
    ("GET", ("jobs", None, "events"), "ep_job_events"),
    ("GET", ("jobs", None, "result"), "ep_job_result"),
    ("DELETE", ("jobs", None), "ep_job_cancel"),
)


def _match(
    routes: tuple[tuple[str, tuple[str | None, ...], str], ...],
    method: str,
    segments: tuple[str, ...],
) -> tuple[str, list[str]] | None:
    """Resolve ``(handler name, captured wildcards)`` from a route table."""
    for route_method, pattern, handler in routes:
        if route_method != method or len(pattern) != len(segments):
            continue
        captured = []
        for expected, got in zip(pattern, segments):
            if expected is None:
                captured.append(got)
            elif expected != got:
                break
        else:
            return handler, captured
    return None


class JsonApiHandler(BaseHTTPRequestHandler):
    """Shared plumbing of the ``/v1`` JSON surface.

    Both front ends — the single-process service handler below and the
    shard router's handler (:mod:`repro.service.router`) — subclass
    this: one declarative route table (class attribute ``ROUTES``), one
    ``/v1``-or-deprecated-alias path parser, one error mapping onto the
    unified envelope.  Subclasses provide ``ROUTES``, the ``ep_*``
    methods it names, and may override :meth:`_unrouted` (the router
    turns unmatched paths into forwards instead of 404s).
    """

    ROUTES: tuple[tuple[str, tuple[str | None, ...], str], ...] = ()

    server_version = "repro-service/" + str(SERVICE_SCHEMA)
    protocol_version = "HTTP/1.1"
    # a response is two small writes (header block, JSON body); with
    # Nagle on, the body segment can sit behind the peer's delayed ACK
    # for ~40 ms per request — a floor that would bury the hot/cold
    # throughput contrast the cache exists to deliver.  socketserver's
    # StreamRequestHandler.setup() turns this into TCP_NODELAY.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # ------------------------------------------------------------ plumbing
    def _send_json(
        self, status: int, doc: Any, headers: dict[str, str] | None = None
    ) -> None:
        self._send_payload(
            status, json.dumps(doc).encode("utf-8"), headers=headers
        )

    def _send_payload(
        self,
        status: int,
        payload: bytes,
        headers: dict[str, str] | None = None,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _read_raw_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body is empty")
        if length > MAX_BODY_BYTES:
            # refuse without reading: draining a deliberately huge body
            # would be the denial of service; the connection closes
            raise ApiError(
                413, "payload_too_large",
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        return self.rfile.read(length)

    def _read_body(self) -> Any:
        try:
            return json.loads(self._read_raw_body())
        except ValueError:
            raise ValueError("request body is not valid JSON") from None

    # ----------------------------------------------------------- dispatch
    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    def _on_deprecated_request(self) -> None:
        """Hook: a request arrived on an unprefixed legacy alias."""

    def _unrouted(
        self, method: str, segments: tuple[str, ...], path: str, headers
    ):
        """Hook for paths the route table does not match (default 404)."""
        raise ApiError(
            404, "not_found",
            f"no such endpoint {method} {path!r}; see /v1/healthz",
        )

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0]
        segments = tuple(s for s in path.split("/") if s)
        deprecated = not (segments and segments[0] == API_VERSION)
        if not deprecated:
            segments = segments[1:]
        headers: dict[str, str] = {}
        if deprecated:
            headers["Deprecation"] = "true"
        match = _match(self.ROUTES, method, segments)
        try:
            if deprecated and match is not None:
                self._on_deprecated_request()
            if match is None:
                result = self._unrouted(method, segments, path, headers)
            else:
                handler_name, captured = match
                result = getattr(self, handler_name)(
                    *captured, headers=headers
                )
        except ApiError as exc:
            if exc.retry_after_s is not None:
                headers["Retry-After"] = f"{exc.retry_after_s:g}"
            if exc.status == 413:
                # the unread body is still on the wire; keep-alive would
                # misparse it as the next request line
                headers["Connection"] = "close"
                self.close_connection = True
            self._send_json(exc.status, exc.to_json(), headers=headers)
        except BudgetExceeded as exc:
            headers["Retry-After"] = f"{exc.retry_after_s:g}"
            self._send_json(
                429,
                error_envelope(
                    "budget_exceeded",
                    str(exc),
                    retry_after_s=exc.retry_after_s,
                    predicted_cost=exc.predicted_cost,
                    budget_remaining=exc.budget_remaining,
                    scope=exc.scope,
                ),
                headers=headers,
            )
        except QueueFull as exc:
            headers["Retry-After"] = f"{exc.retry_after_s:g}"
            self._send_json(
                429,
                error_envelope(
                    "queue_full", str(exc), retry_after_s=exc.retry_after_s
                ),
                headers=headers,
            )
        except ValueError as exc:
            self._send_json(
                400, error_envelope("bad_request", str(exc)), headers=headers
            )
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(
                500,
                error_envelope("internal", f"internal error: {exc!r}"),
                headers=headers,
            )
        else:
            if result is not _STREAMED:
                status, doc = result
                self._send_json(status, doc, headers=headers)


class _Handler(JsonApiHandler):
    """The single-process front end: every route runs the service
    in-process (the sharded tier subclasses the same base with a
    forwarding handler instead — see :mod:`repro.service.router`)."""

    ROUTES = ROUTES

    @property
    def service(self) -> SimService:
        return self.server.service  # type: ignore[attr-defined]

    def _on_deprecated_request(self) -> None:
        self.service.http_counters.add("deprecated_requests")

    def _tenant(self) -> str:
        """The request's tenant (``X-Tenant`` header, default tenant)."""
        return (self.headers.get("X-Tenant") or "").strip() or DEFAULT_TENANT

    # ------------------------------------------------------------- routes
    def ep_healthz(self, headers) -> tuple[int, Any]:
        return 200, self.service.healthz()

    def ep_metrics(self, headers) -> tuple[int, Any]:
        return 200, self.service.metrics()

    def ep_run(self, headers) -> tuple[int, Any]:
        return 200, self.service.handle_run(
            self._read_body(), tenant=self._tenant()
        )

    def ep_batch(self, headers) -> tuple[int, Any]:
        return 200, self.service.handle_batch(
            self._read_body(), tenant=self._tenant()
        )

    def ep_plan(self, headers) -> tuple[int, Any]:
        return 200, self.service.handle_plan(
            self._read_body(), tenant=self._tenant()
        )

    def ep_jobs_submit(self, headers) -> tuple[int, Any]:
        return 202, self.service.handle_jobs_submit(self._read_body())

    def ep_jobs_list(self, headers) -> tuple[int, Any]:
        return 200, self.service.handle_jobs_list()

    def ep_job_status(self, job_id: str, headers) -> tuple[int, Any]:
        return 200, self.service.handle_job_status(job_id)

    def ep_job_result(self, job_id: str, headers) -> tuple[int, Any]:
        return 200, self.service.handle_job_result(job_id)

    def ep_job_cancel(self, job_id: str, headers) -> tuple[int, Any]:
        return 200, self.service.handle_job_cancel(job_id)

    def ep_job_events(self, job_id: str, headers):
        """Stream job progress as chunked JSON lines until terminal.

        One event per line, flushed per event (``Transfer-Encoding:
        chunked``, hand-rolled — ``BaseHTTPRequestHandler`` has no
        streaming support).  ``http.client`` and curl both de-chunk
        transparently.  The stream is fed from the job ledger's append
        hook, so a line exists for every checkpointed cell.
        """
        events = self.service.job_events(job_id)  # ApiError 404 raises here
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Connection", "close")
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.close_connection = True
        try:
            for event in events:
                chunk = (json.dumps(event) + "\n").encode("utf-8")
                self.wfile.write(b"%x\r\n" % len(chunk) + chunk + b"\r\n")
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up mid-stream; the job keeps running
        return _STREAMED


class _Server(ThreadingHTTPServer):
    daemon_threads = True


def make_server(
    host: str,
    port: int,
    service: SimService,
    verbose: bool = False,
    handler_cls: type[JsonApiHandler] = _Handler,
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server serving ``service`` (``port=0`` for
    an ephemeral port — read the bound one off ``server_address``)."""
    httpd = _Server((host, port), handler_cls)
    httpd.service = service  # type: ignore[attr-defined]
    httpd.verbose = verbose  # type: ignore[attr-defined]
    return httpd


class ServiceServer:
    """An in-process server on a background thread (tests, loadgen).

    >>> server = ServiceServer(SimService(cache_capacity=4))
    >>> server.url.startswith("http://127.0.0.1:")
    True
    >>> server.close()
    """

    def __init__(self, service: SimService | None = None, host: str = "127.0.0.1"):
        self.service = service or SimService()
        self.httpd = make_server(host, 0, self.service)
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join(timeout=5)
        self.service.close()

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    cache_capacity: int = DEFAULT_CAPACITY,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    jobs: int = 1,
    ledger=None,
    jobs_dir: str | None = None,
    planner: Planner | None = None,
    echo=print,
) -> int:
    """Blocking CLI entry: serve until interrupted (Ctrl-C -> clean exit)."""
    service = SimService(
        cache_capacity=cache_capacity,
        queue_limit=queue_limit,
        jobs=jobs,
        ledger=ledger,
        jobs_dir=jobs_dir,
        planner=planner,
    )
    httpd = make_server(host, port, service)
    bound_host, bound_port = httpd.server_address[:2]
    if echo:
        echo(
            f"repro simulation service on http://{bound_host}:{bound_port}  "
            f"(cache {cache_capacity}, queue {queue_limit}, jobs {jobs}"
            + (", persistent cache" if ledger is not None else "")
            + (f", jobs dir {jobs_dir}" if jobs_dir is not None else "")
            + (", planner on" if planner is not None else "")
            + ")"
        )
        echo(
            "endpoints (under /v1; unprefixed aliases are deprecated): "
            "POST /v1/run  POST /v1/batch  POST /v1/plan  POST /v1/jobs  "
            "GET /v1/jobs[/<id>[/events|/result]]  DELETE /v1/jobs/<id>  "
            "GET /v1/healthz  GET /v1/metrics"
        )
    try:
        httpd.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        if echo:
            echo("\nshutting down")
    finally:
        httpd.server_close()
        service.close()
    return 0
