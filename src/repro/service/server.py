"""The HTTP front end: a stdlib ``ThreadingHTTPServer`` over the scheduler.

Endpoints (all JSON):

* ``POST /run`` — body is one :class:`~repro.service.scheduler.SimRequest`
  document (``{"engine": ..., "program": ..., "v": ..., ...}``);
  response carries the content-addressed ``key``, the ``served`` path
  (``computed`` | ``cached`` | ``coalesced``) and the engine ``result``
  document.
* ``POST /batch`` — ``{"requests": [...]}``; the requests are served
  sequentially on this connection's handler thread (each one still
  coalesces with, and is cached for, every other connection), response
  is ``{"results": [...]}`` in request order.
* ``GET /healthz`` — liveness plus the engine/program inventories.
* ``GET /metrics`` — cache counters + gauges, queue gauges, request
  counters and the host-side recovery counters, as one JSON document.

Failure mapping: a malformed body or unknown engine/program/function is
a ``400`` with the validating :class:`ValueError`'s message; a full
admission queue is a ``429`` with a ``Retry-After`` header; anything
else is a ``500``.  Worker deaths and task timeouts are *not* failures
— the scheduler retries them via the resilience machinery, and their
traces appear in ``/metrics`` under ``recovery``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.engines import ENGINES, FUNCTION_HELP, PROGRAMS
from repro.resilience import recovery
from repro.service.cache import DEFAULT_CAPACITY, ResultCache
from repro.service.scheduler import (
    DEFAULT_QUEUE_LIMIT,
    SERVICE_SCHEMA,
    QueueFull,
    Scheduler,
    SimRequest,
)

__all__ = ["SimService", "ServiceServer", "make_server", "serve"]

#: default TCP port (8173 = "BSP" on a phone keypad, roughly)
DEFAULT_PORT = 8173

#: request bodies above this are rejected outright (1 MiB is orders of
#: magnitude beyond any valid batch)
MAX_BODY_BYTES = 1 << 20


class SimService:
    """The served application: one cache + one scheduler, HTTP-agnostic.

    Separating the application from the socket machinery keeps the
    serving logic callable in-process (tests, the in-process loadgen
    mode) with byte-identical behaviour to the HTTP path.
    """

    def __init__(
        self,
        cache_capacity: int = DEFAULT_CAPACITY,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        jobs: int = 1,
        ledger=None,
        retry_after_s: float = 1.0,
    ):
        self.cache = ResultCache(cache_capacity, ledger=ledger)
        self.scheduler = Scheduler(
            self.cache,
            parallel=jobs,
            queue_limit=queue_limit,
            retry_after_s=retry_after_s,
        )

    # ------------------------------------------------------------ handlers
    def handle_run(self, body: Any) -> dict[str, Any]:
        """Serve one request document; raises ``ValueError``/``QueueFull``."""
        request = SimRequest.from_json(body)
        key, doc, served = self.scheduler.submit(request)
        return {"key": key, "served": served, "result": doc}

    def handle_batch(self, body: Any) -> dict[str, Any]:
        """Serve a batch document: ``{"requests": [...]}`` -> results."""
        if not isinstance(body, dict) or "requests" not in body:
            raise ValueError(
                'batch body must be a JSON object with a "requests" list'
            )
        requests = body["requests"]
        if not isinstance(requests, list) or not requests:
            raise ValueError('"requests" must be a non-empty list')
        # validate everything first: a 400 must not half-execute a batch
        parsed = [SimRequest.from_json(doc) for doc in requests]
        results = []
        for request in parsed:
            key, doc, served = self.scheduler.submit(request)
            results.append({"key": key, "served": served, "result": doc})
        return {"results": results}

    def healthz(self) -> dict[str, Any]:
        return {
            "ok": True,
            "schema": SERVICE_SCHEMA,
            "engines": sorted(ENGINES),
            "programs": sorted(PROGRAMS),
            "functions": FUNCTION_HELP,
        }

    def metrics(self) -> dict[str, Any]:
        """The ``GET /metrics`` document (all sections, one scrape)."""
        requests = {
            "admitted": 0,
            "served_computed": 0,
            "served_cached": 0,
            "served_coalesced": 0,
            "rejected": 0,
            "errors": 0,
        }
        requests.update(self.scheduler.counters.snapshot())
        return {
            "schema": SERVICE_SCHEMA,
            "cache": self.cache.gauges(),
            "queue": self.scheduler.gauges(),
            "requests": requests,
            "recovery": recovery.counters(),
        }


class _Handler(BaseHTTPRequestHandler):
    """Route the four endpoints onto the :class:`SimService`."""

    server_version = "repro-service/" + str(SERVICE_SCHEMA)
    protocol_version = "HTTP/1.1"
    # a response is two small writes (header block, JSON body); with
    # Nagle on, the body segment can sit behind the peer's delayed ACK
    # for ~40 ms per request — a floor that would bury the hot/cold
    # throughput contrast the cache exists to deliver.  socketserver's
    # StreamRequestHandler.setup() turns this into TCP_NODELAY.
    disable_nagle_algorithm = True

    @property
    def service(self) -> SimService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # ------------------------------------------------------------ plumbing
    def _send_json(
        self, status: int, doc: Any, headers: dict[str, str] | None = None
    ) -> None:
        payload = json.dumps(doc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body is empty")
        if length > MAX_BODY_BYTES:
            raise ValueError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError:
            raise ValueError("request body is not valid JSON") from None

    # ------------------------------------------------------------- routes
    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._send_json(200, self.service.healthz())
        elif self.path == "/metrics":
            self._send_json(200, self.service.metrics())
        else:
            self._send_json(404, {"error": f"no such endpoint {self.path!r}"})

    def do_POST(self) -> None:
        if self.path == "/run":
            handler = self.service.handle_run
        elif self.path == "/batch":
            handler = self.service.handle_batch
        else:
            self._send_json(404, {"error": f"no such endpoint {self.path!r}"})
            return
        try:
            body = self._read_body()
            doc = handler(body)
        except QueueFull as exc:
            self._send_json(
                429,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                headers={"Retry-After": f"{exc.retry_after_s:g}"},
            )
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"internal error: {exc!r}"})
        else:
            self._send_json(200, doc)


class _Server(ThreadingHTTPServer):
    daemon_threads = True


def make_server(
    host: str, port: int, service: SimService, verbose: bool = False
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server serving ``service`` (``port=0`` for
    an ephemeral port — read the bound one off ``server_address``)."""
    httpd = _Server((host, port), _Handler)
    httpd.service = service  # type: ignore[attr-defined]
    httpd.verbose = verbose  # type: ignore[attr-defined]
    return httpd


class ServiceServer:
    """An in-process server on a background thread (tests, loadgen).

    >>> server = ServiceServer(SimService(cache_capacity=4))
    >>> server.url.startswith("http://127.0.0.1:")
    True
    >>> server.close()
    """

    def __init__(self, service: SimService | None = None, host: str = "127.0.0.1"):
        self.service = service or SimService()
        self.httpd = make_server(host, 0, self.service)
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    cache_capacity: int = DEFAULT_CAPACITY,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    jobs: int = 1,
    ledger=None,
    echo=print,
) -> int:
    """Blocking CLI entry: serve until interrupted (Ctrl-C -> clean exit)."""
    service = SimService(
        cache_capacity=cache_capacity,
        queue_limit=queue_limit,
        jobs=jobs,
        ledger=ledger,
    )
    httpd = make_server(host, port, service)
    bound_host, bound_port = httpd.server_address[:2]
    if echo:
        echo(
            f"repro simulation service on http://{bound_host}:{bound_port}  "
            f"(cache {cache_capacity}, queue {queue_limit}, jobs {jobs}"
            + (", persistent cache" if ledger is not None else "")
            + ")"
        )
        echo("endpoints: POST /run  POST /batch  GET /healthz  GET /metrics")
    try:
        httpd.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        if echo:
            echo("\nshutting down")
    finally:
        httpd.server_close()
    return 0
