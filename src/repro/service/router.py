"""The sharded tier's front door: key-affine routing with failover.

The router is a thin HTTP process in front of N shard processes (see
:mod:`repro.service.shard`).  Each shard runs the ordinary
:class:`~repro.service.server.SimService` over its own ledger-backed
cache; the router owns no cache and no scheduler — it only decides
*which* shard serves a request and relays bytes.

**Ownership** is consistent hashing on the request's existing content
hash (:meth:`~repro.service.scheduler.SimRequest.key`): every shard
contributes :data:`VNODES` pseudo-random points to a 64-bit ring, and a
key is owned by the first point at or after its own position.  This is
the serving-layer translation of the paper's submachine decomposition —
requests with the same content hash always land on the same shard, so
each shard sees a *dense* slice of the key space and its private LRU
cache + ledger stay hot for exactly that slice (submachine locality
becomes per-shard locality of reference).  Adding or losing a shard
moves only the ring arcs adjacent to its points, not the whole mapping.

**Failover** is the rest of the ring walk: the owner's chain is every
other shard in ring order, so when the owner is marked dead the router
re-hashes its arc onto the survivors deterministically (first *alive*
shard in the chain).  Death is detected two ways — passively (a forward
hits a connection error: the shard is marked dead immediately and the
request retries down the chain) and actively (a background prober GETs
each shard's ``/v1/healthz``; :data:`PROBE_FAILURES` consecutive
failures mark it dead, one success marks it alive again and takes its
arc back).  While no shard in a chain answers, the client sees a ``503``
with the standard ``{"error": {...}}`` envelope and a ``Retry-After``
hint — never a raw connection reset.

**Jobs are pinned**: job state (manifests, ledgers, the background
runner) is process-local to a shard, so the whole ``/v1/jobs`` surface
forwards to shard 0 verbatim, including the chunked events stream.

``GET /v1/metrics`` on the router aggregates: router counters
(``forwards``, ``failovers``, ``shard_deaths``, ``rehash_events``,
``unavailable``), a per-shard rollup (alive flag + each shard's cache
and request counters), and a tier-wide ``cache`` section summing the
per-shard hit/miss/store counters.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import threading
from http.server import ThreadingHTTPServer
from typing import Any

from repro.obs.counters import Counters
from repro.service.errors import ApiError
from repro.service.scheduler import SERVICE_SCHEMA, parse_run_request
from repro.service.server import _STREAMED, API_VERSION, JsonApiHandler

__all__ = [
    "HashRing",
    "Router",
    "ShardClient",
    "make_router_server",
]

#: virtual nodes per shard on the hash ring — enough that two shards
#: split the key space within a few percent of evenly
VNODES = 64

#: consecutive failed health probes before the prober declares a shard
#: dead (a single failure may be a queue hiccup)
PROBE_FAILURES = 2

#: how often the background prober sweeps the shard set (seconds)
PROBE_INTERVAL_S = 0.5

#: Retry-After hint on 503 shard_unavailable (the supervisor respawn +
#: ledger preload cycle comfortably fits in this)
UNAVAILABLE_RETRY_S = 0.5

#: per-forward socket timeout; compute requests can take a while, so
#: this is generous — *connection* failures surface immediately anyway
FORWARD_TIMEOUT_S = 60.0


def _ring_position(data: str) -> int:
    """A stable 64-bit ring position for arbitrary text."""
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent hashing of content-hash keys onto shard indices.

    >>> ring = HashRing(3)
    >>> chain = ring.chain("a" * 32)
    >>> sorted(chain) == [0, 1, 2]  # every shard appears exactly once
    True
    >>> ring.chain("a" * 32) == chain  # and deterministically so
    True
    """

    def __init__(self, shards: int, vnodes: int = VNODES):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        points = []
        for index in range(shards):
            for v in range(vnodes):
                points.append((_ring_position(f"shard-{index}:{v}"), index))
        points.sort()
        self._points = points
        self.shards = shards

    def chain(self, key: str) -> list[int]:
        """All shard indices in ring order from ``key``'s position.

        The first entry is the owner; the rest is the deterministic
        failover order (each shard once, in the order their points
        appear walking clockwise).
        """
        # keys are cell_key() content hashes (hex); their own position
        # reuses the leading 64 bits of the hash rather than re-hashing
        try:
            position = int(key[:16], 16)
        except ValueError:
            position = _ring_position(key)
        points = self._points
        lo, hi = 0, len(points)
        while lo < hi:
            mid = (lo + hi) // 2
            if points[mid][0] < position:
                lo = mid + 1
            else:
                hi = mid
        seen: list[int] = []
        for offset in range(len(points)):
            index = points[(lo + offset) % len(points)][1]
            if index not in seen:
                seen.append(index)
                if len(seen) == self.shards:
                    break
        return seen

    def owner(self, key: str) -> int:
        return self.chain(key)[0]


class ShardClient:
    """One shard's address, liveness state and pooled connections."""

    def __init__(self, index: int, host: str, port: int):
        self.index = index
        self.host = host
        self.port = port
        self.alive = True
        self.probe_failures = 0
        self._pool: list[http.client.HTTPConnection] = []
        self._lock = threading.Lock()

    # --------------------------------------------------------- connections
    def _checkout(self) -> http.client.HTTPConnection:
        with self._lock:
            if self._pool:
                return self._pool.pop()
        return http.client.HTTPConnection(
            self.host, self.port, timeout=FORWARD_TIMEOUT_S
        )

    def _checkin(self, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            if len(self._pool) < 32:
                self._pool.append(conn)
                return
        conn.close()

    def drop_pool(self) -> None:
        """Close every pooled connection (the shard died or moved)."""
        with self._lock:
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()

    # ------------------------------------------------------------ requests
    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One forwarded request; raises ``OSError`` on transport failure.

        A request on a pooled (possibly stale) keep-alive connection
        gets one retry on a fresh connection before the failure
        propagates — a shard restart must not surface as an error for
        requests that never reached the old process.  ``headers`` are
        extra request headers (the router forwards ``X-Tenant`` so the
        shard charges the right cost budget).
        """
        send_headers = dict(headers or {})
        if body:
            send_headers.setdefault("Content-Type", "application/json")
        headers = send_headers
        last_exc: Exception | None = None
        for attempt in range(2):
            conn = self._checkout() if attempt == 0 else (
                http.client.HTTPConnection(
                    self.host, self.port, timeout=FORWARD_TIMEOUT_S
                )
            )
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                payload = resp.read()
                status = resp.status
                resp_headers = {k: v for k, v in resp.getheaders()}
            except (OSError, http.client.HTTPException) as exc:
                conn.close()
                last_exc = exc
                continue
            if resp.will_close:
                conn.close()
            else:
                self._checkin(conn)
            return status, resp_headers, payload
        raise OSError(f"shard {self.index} unreachable: {last_exc!r}")

    def open_stream(
        self, method: str, path: str
    ) -> tuple[http.client.HTTPConnection, http.client.HTTPResponse]:
        """A dedicated (non-pooled) connection for a streamed response."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=FORWARD_TIMEOUT_S
        )
        try:
            conn.request(method, path)
            return conn, conn.getresponse()
        except (OSError, http.client.HTTPException):
            conn.close()
            raise


class Router:
    """Routing state shared by every handler thread (HTTP-agnostic)."""

    def __init__(self, shards: list[ShardClient], planner=None):
        if not shards:
            raise ValueError("a router needs at least one shard")
        self.shards = shards
        self.ring = HashRing(len(shards))
        #: optional :class:`~repro.service.planner.Planner` used only to
        #: resolve unset/``"auto"`` engines *at the front door*, so the
        #: routing key and the shard's cache key agree (shards always
        #: see a concrete engine).  Admission budgets live on the
        #: shards, each gating its own slice of the key space.
        self.planner = planner
        self.counters = Counters()
        self._lock = threading.Lock()
        self._probe_stop = threading.Event()
        self._probe_thread: threading.Thread | None = None

    # ------------------------------------------------------------ liveness
    def mark_dead(self, shard: ShardClient, how: str) -> None:
        with self._lock:
            if shard.alive:
                shard.alive = False
                self.counters.add("shard_deaths")
                self.counters.add("rehash_events")
                self.counters.add(f"deaths_{how}")
        shard.drop_pool()

    def mark_alive(self, shard: ShardClient) -> None:
        with self._lock:
            shard.probe_failures = 0
            if not shard.alive:
                shard.alive = True
                # the shard takes its ring arc back from the survivors
                self.counters.add("rehash_events")

    def _probe_once(self) -> None:
        for shard in self.shards:
            try:
                status, _, _ = shard.request("GET", f"/{API_VERSION}/healthz")
                ok = status == 200
            except OSError:
                ok = False
            self.counters.add("probes")
            if ok:
                self.mark_alive(shard)
            else:
                shard.probe_failures += 1
                if shard.probe_failures >= PROBE_FAILURES and shard.alive:
                    self.mark_dead(shard, "probe")

    def _probe_loop(self) -> None:
        while not self._probe_stop.wait(PROBE_INTERVAL_S):
            self._probe_once()

    def start_prober(self) -> None:
        if self._probe_thread is None:
            self._probe_thread = threading.Thread(
                target=self._probe_loop, daemon=True
            )
            self._probe_thread.start()

    def close(self) -> None:
        self._probe_stop.set()
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=5)
        for shard in self.shards:
            shard.drop_pool()

    # ---------------------------------------------------------- forwarding
    def _unavailable(self, what: str) -> ApiError:
        self.counters.add("unavailable")
        return ApiError(
            503, "shard_unavailable",
            f"no shard is currently able to serve {what}; the supervisor "
            "restarts dead shards automatically",
            retry_after_s=UNAVAILABLE_RETRY_S,
        )

    def forward_by_key(
        self,
        key: str,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """Forward to ``key``'s owner, walking the failover chain.

        Only *transport* failures advance the chain — an HTTP error
        status (400, 429, ...) is the owner's authoritative answer and
        passes through unchanged.
        """
        chain = self.ring.chain(key)
        for position, index in enumerate(chain):
            shard = self.shards[index]
            if not shard.alive:
                continue
            if position > 0:
                # the owner (or a closer survivor) is out: this request
                # rides the re-hashed arc on a failover shard
                self.counters.add("failovers")
            try:
                result = shard.request(method, path, body, headers=headers)
            except OSError:
                self.mark_dead(shard, "forward")
                continue
            self.counters.add("forwards")
            return result
        raise self._unavailable(f"key {key[:12]}…")

    def forward_pinned(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """Forward to shard 0 (the jobs surface is process-local)."""
        shard = self.shards[0]
        try:
            result = shard.request(method, path, body, headers=headers)
        except OSError:
            self.mark_dead(shard, "forward")
            raise self._unavailable(path) from None
        self.counters.add("forwards")
        return result

    def any_alive(self) -> ShardClient | None:
        for shard in self.shards:
            if shard.alive:
                return shard
        return None

    # ------------------------------------------------------------- metrics
    def shard_doc(self, shard: ShardClient) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "alive": shard.alive,
            "addr": f"{shard.host}:{shard.port}",
        }
        if shard.alive:
            try:
                status, _, payload = shard.request(
                    "GET", f"/{API_VERSION}/metrics"
                )
                if status == 200:
                    metrics = json.loads(payload)
                    doc["cache"] = metrics.get("cache", {})
                    doc["requests"] = metrics.get("requests", {})
                    doc["planner"] = metrics.get("planner", {})
                    doc["kernel"] = metrics.get("kernel", {})
            except (OSError, ValueError):
                pass  # alive flag still reflects the prober's view
        return doc

    def metrics(self) -> dict[str, Any]:
        """The router's aggregated ``GET /v1/metrics`` document."""
        router: dict[str, Any] = {
            "shards": len(self.shards),
            "alive": sum(1 for s in self.shards if s.alive),
            "forwards": 0,
            "failovers": 0,
            "shard_deaths": 0,
            "rehash_events": 0,
            "unavailable": 0,
        }
        router.update(self.counters.snapshot())
        shards: dict[str, Any] = {}
        rollup = {"hits": 0, "misses": 0, "stores": 0, "preloaded": 0}
        planner_rollup: dict[str, Any] = {
            "enabled": False,
            "shed_tenant": 0,
            "shed_global": 0,
            "tenants": {},
        }
        tenant_rollup: dict[str, dict[str, float]] = planner_rollup["tenants"]
        kernel_rollup: dict[str, int] | None = None
        for shard in self.shards:
            doc = self.shard_doc(shard)
            shards[str(shard.index)] = doc
            for field in rollup:
                rollup[field] += doc.get("cache", {}).get(field, 0)
            shard_cache = doc.get("kernel", {}).get("plan_cache")
            if shard_cache is not None:
                # per-process caches: the tier-wide view is the sum
                if kernel_rollup is None:
                    kernel_rollup = {
                        "size": 0,
                        "max": 0,
                        "hits": 0,
                        "misses": 0,
                        "evictions": 0,
                    }
                for field in kernel_rollup:
                    kernel_rollup[field] += shard_cache.get(field, 0)
            shard_planner = doc.get("planner", {})
            if shard_planner.get("enabled"):
                # each shard gates its own key-space slice; the tier-wide
                # view of one tenant's budget is the sum over shards
                planner_rollup["enabled"] = True
                for counter in ("shed_tenant", "shed_global"):
                    planner_rollup[counter] += shard_planner.get(counter, 0)
                for tenant, budget in shard_planner.get(
                    "tenants", {}
                ).items():
                    agg = tenant_rollup.setdefault(
                        tenant,
                        {
                            "capacity": 0.0,
                            "remaining": 0.0,
                            "spent_total": 0.0,
                            "rejections": 0,
                        },
                    )
                    for field in agg:
                        agg[field] += budget.get(field, 0)
        doc = {
            "schema": SERVICE_SCHEMA,
            "api": API_VERSION,
            "router": router,
            "shards": shards,
            "cache": rollup,
        }
        # keep the planner-less metrics envelope unchanged: the section
        # appears only when some shard (or the router) actually plans
        if planner_rollup["enabled"] or self.planner is not None:
            doc["planner"] = planner_rollup
        # same conditional pattern: present only when some shard reports
        # its vec-kernel plan cache
        if kernel_rollup is not None:
            doc["kernel"] = {"plan_cache": kernel_rollup}
        return doc

    def healthz(self) -> dict[str, Any]:
        """Healthz is shard-transparent: a live shard's document plus a
        ``router`` section (503 envelope when no shard answers)."""
        shard = self.any_alive()
        doc: dict[str, Any] | None = None
        if shard is not None:
            try:
                status, _, payload = shard.request(
                    "GET", f"/{API_VERSION}/healthz"
                )
                if status == 200:
                    doc = json.loads(payload)
            except (OSError, ValueError):
                self.mark_dead(shard, "forward")
        if doc is None:
            raise self._unavailable("healthz")
        doc["router"] = {
            "shards": len(self.shards),
            "alive": sum(1 for s in self.shards if s.alive),
        }
        return doc


class RouterHandler(JsonApiHandler):
    """The router's HTTP face: same base plumbing as the service
    handler, but every route is a forward (or an aggregation) instead
    of an in-process call."""

    ROUTES = (
        ("GET", ("healthz",), "ep_healthz"),
        ("GET", ("metrics",), "ep_metrics"),
        ("POST", ("run",), "ep_run"),
        ("POST", ("batch",), "ep_batch"),
        ("POST", ("plan",), "ep_plan"),
        ("POST", ("jobs",), "ep_jobs"),
        ("GET", ("jobs",), "ep_jobs"),
        ("GET", ("jobs", None), "ep_jobs"),
        ("GET", ("jobs", None, "result"), "ep_jobs"),
        ("DELETE", ("jobs", None), "ep_jobs"),
        ("GET", ("jobs", None, "events"), "ep_jobs_events"),
    )

    @property
    def router(self) -> Router:
        return self.server.router  # type: ignore[attr-defined]

    def _on_deprecated_request(self) -> None:
        self.router.counters.add("deprecated_requests")

    def _forward_headers(self) -> dict[str, str]:
        """Request headers the router relays shard-ward (tenant identity)."""
        tenant = (self.headers.get("X-Tenant") or "").strip()
        return {"X-Tenant": tenant} if tenant else {}

    def _resolve_engine(self, body: Any) -> tuple[Any, bytes]:
        """Resolve an unset/``"auto"`` engine at the front door.

        The chosen engine is written *into the forwarded body*, so the
        ring key computed here and the cache key the shard derives are
        one and the same.  Without a router planner the body passes
        through untouched (the shard's own planner may still choose,
        shifting only which shard's cache holds the result).
        """
        if (
            self.router.planner is not None
            and isinstance(body, dict)
            and ("engine" not in body or body.get("engine") == "auto")
        ):
            probe = {k: v for k, v in body.items() if k != "engine"}
            decision = self.router.planner.plan(
                parse_run_request(probe), engine_unset=True
            )
            body = dict(probe, engine=decision.engine)
        return body, json.dumps(body).encode("utf-8")

    def _relay(
        self,
        result: tuple[int, dict[str, str], bytes],
        headers: dict[str, str],
    ):
        """Write a forwarded (status, headers, payload) response."""
        status, shard_headers, payload = result
        passthrough = dict(headers)
        for name in ("Retry-After", "Deprecation"):
            if name in shard_headers:
                passthrough[name] = shard_headers[name]
        self._send_payload(status, payload, headers=passthrough)
        return _STREAMED

    # ------------------------------------------------------------- routes
    def ep_healthz(self, headers) -> tuple[int, Any]:
        return 200, self.router.healthz()

    def ep_metrics(self, headers) -> tuple[int, Any]:
        return 200, self.router.metrics()

    def ep_run(self, headers):
        raw = self._read_raw_body()
        try:
            body = json.loads(raw)
        except ValueError:
            raise ValueError("request body is not valid JSON") from None
        body, raw = self._resolve_engine(body)
        # the router validates and hashes exactly like a shard would, so
        # a malformed request 400s here without consuming shard capacity
        key = parse_run_request(body).key()
        result = self.router.forward_by_key(
            key, "POST", f"/{API_VERSION}/run", raw,
            headers=self._forward_headers(),
        )
        return self._relay(result, headers)

    def ep_plan(self, headers):
        raw = self._read_raw_body()
        try:
            body = json.loads(raw)
        except ValueError:
            raise ValueError("request body is not valid JSON") from None
        body, raw = self._resolve_engine(body)
        # the owner shard answers: its planner holds the cost budgets
        # for exactly this request's slice of the key space
        key = parse_run_request(body).key()
        result = self.router.forward_by_key(
            key, "POST", f"/{API_VERSION}/plan", raw,
            headers=self._forward_headers(),
        )
        return self._relay(result, headers)

    def ep_batch(self, headers):
        body = self._read_body()
        if not isinstance(body, dict) or "requests" not in body:
            raise ValueError(
                'batch body must be a JSON object with a "requests" list'
            )
        requests = body["requests"]
        if not isinstance(requests, list) or not requests:
            raise ValueError('"requests" must be a non-empty list')
        resolved = [self._resolve_engine(doc)[0] for doc in requests]
        parsed = [parse_run_request(doc) for doc in resolved]
        # split by owner, forward sub-batches, stitch in request order —
        # a batch spanning shards still answers as one document
        groups: dict[int, list[int]] = {}
        for position, request in enumerate(parsed):
            owner = self.router.ring.owner(request.key())
            groups.setdefault(owner, []).append(position)
        results: list[Any] = [None] * len(parsed)
        forward_headers = self._forward_headers()
        for owner, positions in groups.items():
            sub = {"requests": [resolved[p] for p in positions]}
            key = parsed[positions[0]].key()
            status, _, payload = self.router.forward_by_key(
                key, "POST", f"/{API_VERSION}/batch",
                json.dumps(sub).encode("utf-8"),
                headers=forward_headers,
            )
            if status != 200:
                # a shard-side rejection (429 under load) fails the
                # whole batch with the shard's own envelope, matching
                # the unsharded all-or-nothing batch contract
                return self._relay((status, {}, payload), headers)
            sub_results = json.loads(payload)["results"]
            for position, result in zip(positions, sub_results):
                results[position] = result
        return 200, {"results": results}

    def ep_jobs(self, *captured, headers):
        body: bytes | None = None
        if self.command == "POST":
            body = self._read_raw_body()
        # forward the request path verbatim, normalized under /v1 (the
        # deprecated alias already earned its Deprecation header here)
        segments = [
            s for s in self.path.split("?", 1)[0].split("/") if s
        ]
        if segments and segments[0] == API_VERSION:
            segments = segments[1:]
        path = "/" + "/".join([API_VERSION] + segments)
        result = self.router.forward_pinned(self.command, path, body)
        return self._relay(result, headers)

    def ep_jobs_events(self, job_id: str, headers):
        """Relay the chunked job-events stream from shard 0."""
        shard = self.router.shards[0]
        try:
            conn, resp = shard.open_stream(
                "GET", f"/{API_VERSION}/jobs/{job_id}/events"
            )
        except (OSError, http.client.HTTPException):
            self.router.mark_dead(shard, "forward")
            raise self._unavailable_events() from None
        self.router.counters.add("forwards")
        try:
            if resp.status != 200:
                payload = resp.read()
                self._send_payload(resp.status, payload, headers=headers)
                return _STREAMED
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.send_header("Connection", "close")
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.close_connection = True
            while True:
                line = resp.readline()  # http.client de-chunks for us
                if not line:
                    break
                self.wfile.write(b"%x\r\n" % len(line) + line + b"\r\n")
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up; the job keeps running on the shard
        finally:
            conn.close()
        return _STREAMED

    def _unavailable_events(self) -> ApiError:
        return self.router._unavailable("the job events stream")


class _RouterServer(ThreadingHTTPServer):
    daemon_threads = True


def make_router_server(
    host: str, port: int, router: Router, verbose: bool = False
) -> ThreadingHTTPServer:
    """Bind the router's front-door HTTP server (``port=0`` works)."""
    httpd = _RouterServer((host, port), RouterHandler)
    httpd.router = router  # type: ignore[attr-defined]
    httpd.verbose = verbose  # type: ignore[attr-defined]
    return httpd
