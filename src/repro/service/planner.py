"""Cost-model-driven planning and admission for the service tier.

The scheduler's flat ``queue_limit`` treats every request as the same
size, so one enormous ``/v1/run`` holds an admission slot as long as a
thousand cheap ones combined and starves them.  The planner replaces
that with *cost-aware* gating built on :class:`~repro.analysis.predict.
CostModel` predictions (closed-form bounds anchored by a per-host
calibration profile):

* **Plan** — :meth:`Planner.plan` turns a validated request into a
  :class:`PlanDecision`: the chosen ``engine`` (auto-selected by
  predicted wall time when the request left it unset), a recommended
  ``jobs`` / ``min_work_per_task`` parallel config, the cache policy
  (``"bypass"`` for huge ``trace="full"`` results that would churn the
  LRU), and the full :class:`~repro.analysis.predict.Prediction`.
  ``POST /v1/plan`` returns this without running anything.
* **Admit** — :meth:`Planner.admit` charges the predicted cost against
  two gates *before* the request occupies a scheduler slot:

  - a per-tenant token-bucket :class:`CostBudget` (tenant comes from
    the ``X-Tenant`` header; unnamed traffic shares ``"default"``),
    refilling at a configured charged-words-per-second rate, and
  - a **global in-flight predicted-cost ceiling** — the sum of
    predicted costs of currently-running computations may not exceed
    ``cost_ceiling``.

  Either gate rejects with :class:`BudgetExceeded` (a
  :class:`~repro.service.scheduler.QueueFull` subclass, so the server's
  429 machinery applies) carrying ``predicted_cost`` and
  ``budget_remaining`` for the extended error envelope, and an *honest*
  ``Retry-After``: the tenant bucket's refill deficit, or the global
  backlog divided by the observed drain rate (an EWMA of charged words
  per wall second over recent completions, seeded from the calibration
  profile's measured throughput).
* **Complete** — :meth:`Planner.complete` releases the in-flight cost
  and feeds the measured wall time back into the drain-rate estimate.

Untrusted predictions (``bounds_only`` pairs, see ``docs/planner.md``)
still pass through admission — with bars :data:`~repro.analysis.
predict.UNTRUSTED_BAND` wide the *point* estimate is still the best
available number — but the flat ``queue_limit`` stays on as a backstop
bound on slot occupancy either way.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.predict import CostModel, Prediction
from repro.obs.counters import Counters
from repro.parallel.config import DEFAULT_MIN_WORK_PER_TASK
from repro.service.scheduler import QueueFull, SimRequest

__all__ = [
    "DEFAULT_TENANT",
    "DEFAULT_TENANT_CAPACITY",
    "DEFAULT_TENANT_REFILL_PER_S",
    "DEFAULT_COST_CEILING",
    "BudgetExceeded",
    "CostBudget",
    "PlanDecision",
    "Planner",
    "planner_from_profile",
]

#: tenant name used when the request carries no ``X-Tenant`` header
DEFAULT_TENANT = "default"

#: per-tenant token-bucket capacity in predicted charged words — a
#: tenant can burst this much at once...
DEFAULT_TENANT_CAPACITY = 20e6

#: ...and sustain this many predicted charged words per second
DEFAULT_TENANT_REFILL_PER_S = 10e6

#: global ceiling on the summed predicted cost of in-flight computations
DEFAULT_COST_CEILING = 50e6

#: predicted wall seconds below which fan-out costs more than it saves
PARALLEL_WORTH_S = 0.05

#: predicted charged words above which a ``trace="full"`` result is too
#: large to be worth an LRU slot (cache policy becomes ``"bypass"``)
CACHE_BYPASS_WORDS = 5e6

#: Retry-After clamp (seconds) — honest, but never absurd
MIN_RETRY_AFTER_S = 0.05
MAX_RETRY_AFTER_S = 60.0

#: EWMA weight of each new drain-rate observation
DRAIN_EWMA_ALPHA = 0.3


def planner_from_profile(
    path: str,
    tenant_capacity: float = DEFAULT_TENANT_CAPACITY,
    tenant_refill_per_s: float = DEFAULT_TENANT_REFILL_PER_S,
    cost_ceiling: float = DEFAULT_COST_CEILING,
    service_jobs: int = 1,
) -> "Planner":
    """Load a calibration profile file into a ready planner.

    The one constructor ``serve``, the shard child process and the CLI
    all share; raises :class:`ValueError` on a missing/stale profile.
    """
    from repro.analysis.predict import load_profile

    return Planner(
        CostModel(load_profile(path)),
        tenant_capacity=tenant_capacity,
        tenant_refill_per_s=tenant_refill_per_s,
        cost_ceiling=cost_ceiling,
        service_jobs=service_jobs,
    )


class BudgetExceeded(QueueFull):
    """Cost-aware admission rejected the request (429).

    Subclasses :class:`QueueFull` so every existing 429 path (server
    mapping, loadgen's backoff loop) applies unchanged; the server adds
    ``predicted_cost`` and ``budget_remaining`` to the error envelope.
    ``scope`` is ``"tenant"`` (this tenant's budget is exhausted) or
    ``"global"`` (the in-flight predicted-cost ceiling is reached).
    """

    def __init__(
        self,
        message: str,
        retry_after_s: float,
        scope: str,
        predicted_cost: float,
        budget_remaining: float,
    ):
        super().__init__(message, retry_after_s)
        self.scope = scope
        self.predicted_cost = predicted_cost
        self.budget_remaining = budget_remaining


class CostBudget:
    """A token bucket denominated in predicted charged words.

    Starts full at ``capacity``; every admitted request spends its
    predicted cost; tokens refill continuously at ``refill_per_s`` up
    to the capacity.  ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        capacity: float,
        refill_per_s: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0 or refill_per_s <= 0:
            raise ValueError("capacity and refill_per_s must be positive")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()
        self.spent_total = 0.0
        self.rejections = 0

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.capacity, self._tokens + elapsed * self.refill_per_s)

    def try_spend(self, cost: float) -> tuple[bool, float, float]:
        """Attempt to spend ``cost`` tokens.

        Returns ``(admitted, retry_after_s, remaining)``.  On refusal
        ``retry_after_s`` is the exact refill time until the bucket
        holds ``cost`` tokens, clamped to [:data:`MIN_RETRY_AFTER_S`,
        :data:`MAX_RETRY_AFTER_S`] — a request larger than the bucket
        itself can never be admitted and gets the full clamp.
        """
        self._refill()
        if cost <= self._tokens:
            self._tokens -= cost
            self.spent_total += cost
            return True, 0.0, self._tokens
        self.rejections += 1
        deficit = cost - self._tokens
        retry_after = _clamp_retry(deficit / self.refill_per_s)
        return False, retry_after, self._tokens

    def remaining(self) -> float:
        self._refill()
        return self._tokens


def _clamp_retry(seconds: float) -> float:
    return min(MAX_RETRY_AFTER_S, max(MIN_RETRY_AFTER_S, seconds))


@dataclass(frozen=True)
class PlanDecision:
    """The planner's answer for one request (the ``/v1/plan`` body).

    ``engine`` is concrete (never ``"auto"``); ``engine_chosen`` records
    whether the planner picked it or the caller did.  ``cache`` is
    ``"store"`` or ``"bypass"``.
    """

    engine: str
    engine_chosen: bool
    jobs: int
    min_work_per_task: int
    cache: str
    prediction: Prediction
    admitted_at: float = field(default=0.0, compare=False)

    def to_json(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "engine_chosen": self.engine_chosen,
            "jobs": self.jobs,
            "min_work_per_task": self.min_work_per_task,
            "cache": self.cache,
            "prediction": self.prediction.to_json(),
        }


class Planner:
    """Prediction, engine selection and cost-aware admission (thread-safe)."""

    def __init__(
        self,
        model: CostModel,
        tenant_capacity: float = DEFAULT_TENANT_CAPACITY,
        tenant_refill_per_s: float = DEFAULT_TENANT_REFILL_PER_S,
        cost_ceiling: float = DEFAULT_COST_CEILING,
        service_jobs: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if cost_ceiling <= 0:
            raise ValueError("cost_ceiling must be positive")
        self.model = model
        self.tenant_capacity = float(tenant_capacity)
        self.tenant_refill_per_s = float(tenant_refill_per_s)
        self.cost_ceiling = float(cost_ceiling)
        self.service_jobs = max(1, service_jobs)
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: dict[str, CostBudget] = {}
        self._inflight_cost = 0.0
        self._inflight = 0
        #: charged words drained per wall second, EWMA over completions;
        #: seeded from the calibration profile's measured peak so the
        #: very first global Retry-After is already grounded
        self._drain_words_per_s = model.profile.words_per_s
        self.counters = Counters()

    # ------------------------------------------------------------- planning
    def plan(
        self, request: SimRequest, engine_unset: bool = False
    ) -> PlanDecision:
        """Predict and decide; raises ``ValueError`` on unplannable input."""
        engine = request.engine
        chosen = False
        if engine_unset:
            engine = self._choose_engine(request)
            chosen = True
        bound_fn = getattr(request, "structural_bound", None)
        if bound_fn is not None:
            # request families the calibration matrix cannot cover
            # (DAG-compiled programs: the spec space is unbounded)
            # supply their own closed-form bound; the planner answers
            # with an honest *untrusted* prediction — wide bars, but a
            # real point estimate, so budgets and ceilings still apply
            prediction = self.model.predict_bound(
                engine, request.program, request.v, request.mu, request.f,
                bound_fn(engine),
            )
        else:
            prediction = self.model.predict(
                engine, request.program, request.v, request.mu, request.f
            )
        self.counters.add("planned")
        if chosen:
            self.counters.add("auto_engine")
        jobs, min_work = self._parallel_plan(prediction)
        cache = (
            "bypass"
            if request.trace == "full"
            and prediction.charged_words > CACHE_BYPASS_WORDS
            else "store"
        )
        return PlanDecision(
            engine=engine,
            engine_chosen=chosen,
            jobs=jobs,
            min_work_per_task=min_work,
            cache=cache,
            prediction=prediction,
        )

    def _choose_engine(self, request: SimRequest) -> str:
        """The calibrated engine with the best predicted wall time.

        Only *simulating* engines with calibration evidence for this
        program compete: an untrusted prediction is no basis for a
        choice, and the ``direct`` reference executor (which charges no
        words, so it would both always win and ride free past every
        budget) must be requested explicitly.  Ties and the no-evidence
        case fall back to the service default ``vec``.
        """
        best, best_wall = "vec", float("inf")
        for name in sorted(self.model.profile.models):
            engine, _, program = name.partition("/")
            if program != request.program:
                continue
            if self.model.profile.models[name].words_ratio is None:
                continue  # charges no words: not a simulation engine
            p = self.model.predict(
                engine, request.program, request.v, request.mu, request.f
            )
            if p.trusted and p.wall_s < best_wall:
                best, best_wall = engine, p.wall_s
        return best

    def _parallel_plan(self, prediction: Prediction) -> tuple[int, int]:
        if (
            self.service_jobs <= 1
            or prediction.wall_s < PARALLEL_WORTH_S
        ):
            return 1, DEFAULT_MIN_WORK_PER_TASK
        # enough predicted work per worker task to amortize dispatch:
        # at least the library default, at most an even split
        min_work = max(
            DEFAULT_MIN_WORK_PER_TASK,
            int(prediction.charged_words // (self.service_jobs * 8)) or 1,
        )
        return self.service_jobs, min_work

    # ------------------------------------------------------------ admission
    def admit(self, tenant: str, decision: PlanDecision) -> None:
        """Charge the predicted cost against both gates or raise.

        Called with the scheduler's admission lock held, *before* the
        request registers an in-flight slot — a shed request never
        occupies one.  Raises :class:`BudgetExceeded`.
        """
        cost = decision.prediction.cost
        with self._lock:
            if self._inflight_cost + cost > self.cost_ceiling:
                self.counters.add("shed_global")
                backlog = self._inflight_cost + cost - self.cost_ceiling
                retry_after = _clamp_retry(
                    backlog / max(1.0, self._drain_words_per_s)
                )
                remaining = max(0.0, self.cost_ceiling - self._inflight_cost)
                raise BudgetExceeded(
                    f"predicted cost {cost:,.0f} words would push in-flight "
                    f"cost past the global ceiling "
                    f"({self._inflight_cost:,.0f}/{self.cost_ceiling:,.0f})",
                    retry_after,
                    scope="global",
                    predicted_cost=cost,
                    budget_remaining=remaining,
                )
            bucket = self._tenants.get(tenant)
            if bucket is None:
                bucket = self._tenants[tenant] = CostBudget(
                    self.tenant_capacity,
                    self.tenant_refill_per_s,
                    clock=self._clock,
                )
            ok, retry_after, remaining = bucket.try_spend(cost)
            if not ok:
                self.counters.add("shed_tenant")
                raise BudgetExceeded(
                    f"predicted cost {cost:,.0f} words exceeds tenant "
                    f"{tenant!r} budget ({remaining:,.0f} words available)",
                    retry_after,
                    scope="tenant",
                    predicted_cost=cost,
                    budget_remaining=remaining,
                )
            self._inflight_cost += cost
            self._inflight += 1
            self.counters.add("admitted_cost", int(cost))

    def probe(self, tenant: str, decision: PlanDecision) -> dict[str, Any]:
        """Non-mutating admission check (the ``/v1/plan`` answer).

        Charges nothing; reports whether :meth:`admit` would accept the
        request right now and how much budget the tenant has left.
        """
        cost = decision.prediction.cost
        with self._lock:
            global_ok = self._inflight_cost + cost <= self.cost_ceiling
            bucket = self._tenants.get(tenant)
            remaining = (
                bucket.remaining() if bucket is not None
                else self.tenant_capacity
            )
        return {
            "tenant": tenant,
            "predicted_cost": cost,
            "budget_remaining": remaining,
            "would_admit": global_ok and cost <= remaining,
        }

    def complete(self, decision: PlanDecision, wall_s: float) -> None:
        """Release in-flight cost; fold the observation into the drain rate."""
        cost = decision.prediction.cost
        with self._lock:
            self._inflight_cost = max(0.0, self._inflight_cost - cost)
            self._inflight = max(0, self._inflight - 1)
            if cost > 0 and wall_s > 1e-6:
                observed = cost / wall_s
                self._drain_words_per_s = (
                    (1 - DRAIN_EWMA_ALPHA) * self._drain_words_per_s
                    + DRAIN_EWMA_ALPHA * observed
                )

    # -------------------------------------------------------------- metrics
    def gauges(self) -> dict[str, Any]:
        """The ``planner`` section of ``GET /v1/metrics``."""
        with self._lock:
            tenants = {
                name: {
                    "capacity": bucket.capacity,
                    "remaining": bucket.remaining(),
                    "spent_total": bucket.spent_total,
                    "rejections": bucket.rejections,
                }
                for name, bucket in sorted(self._tenants.items())
            }
            doc: dict[str, Any] = {
                "cost_ceiling": self.cost_ceiling,
                "inflight_cost": self._inflight_cost,
                "inflight": self._inflight,
                "drain_words_per_s": self._drain_words_per_s,
                "tenants": tenants,
            }
        doc.update(self.counters.snapshot())
        return doc
