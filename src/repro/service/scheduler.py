"""Admission, coalescing and dispatch for the simulation service.

The scheduler is the piece between the HTTP front end and the engines.
One request flows through four stages::

    admit ──► coalesce ──► cache ──► schedule (pool or inline) ──► charge

* **Admit** — at most ``queue_limit`` distinct computations may be in
  flight; a request that would exceed the bound is rejected with
  :class:`QueueFull` (the server maps it to ``429`` +  ``Retry-After``).
  Coalesced followers and cache hits never occupy a slot — backpressure
  applies to *work*, not to *traffic*.
* **Coalesce** — identical concurrent requests (same content-addressed
  key) share one computation: the first becomes the *leader*, the rest
  wait on the leader's flight and receive the same document
  (single-flight, N identical requests -> exactly 1 engine invocation).
* **Cache** — see :class:`~repro.service.cache.ResultCache`.
* **Schedule** — the computation itself is the registered ``run-cell``
  worker task (a pure function of the request args).  With ``jobs > 1``
  it is dispatched onto the shared
  :class:`~repro.parallel.pool.WorkerPool` under the configured
  :class:`~repro.resilience.retry.RetryPolicy`, so a worker death or a
  per-task deadline overrun is retried instead of failing the request;
  an unusable pool degrades to the inline path with one
  :class:`~repro.parallel.config.ParallelFallbackWarning`.  Either way
  the engine runs with ``parallel=1`` inside the task, so the charged
  document is identical at any ``jobs`` value.

Every computed document passes one ``json.loads(json.dumps(...))``
round-trip before it is cached or returned, so computed, coalesced,
cache-hit and ledger-replayed responses are ``==``-identical.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.engines import ENGINES, PROGRAMS, resolve_access_function
from repro.obs.counters import Counters
from repro.obs.trace import SpanRecord
from repro.parallel.config import (
    ParallelConfig,
    resolve_parallel,
    warn_fallback_once,
)
from repro.parallel.pool import PoolUnavailable, shared_pool
from repro.resilience.ledger import MISSING, cell_key

__all__ = [
    "SERVICE_SCHEMA",
    "TRACE_LEVELS",
    "QueueFull",
    "PoolGate",
    "SimRequest",
    "Scheduler",
    "parse_run_request",
]

#: version of the request/response contract; part of every cache key, so
#: bumping it invalidates every cached/persisted result at once
SERVICE_SCHEMA = 1

#: worker-task kind every service computation runs as (and the ledger
#: kind persisted entries are recorded under)
TASK_KIND = "run-cell"

TRACE_LEVELS = ("off", "counters", "phases", "full")

#: bound on distinct in-flight computations before 429
DEFAULT_QUEUE_LIMIT = 64

#: ``Retry-After`` seconds advertised on a 429
DEFAULT_RETRY_AFTER_S = 1.0


class QueueFull(RuntimeError):
    """The admission queue is full; retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class PoolGate:
    """Interactive-over-batch arbitration for the shared worker pool.

    The scheduler (interactive ``/v1/run`` traffic) and the job runner
    (batch sweep cells) dispatch onto the *same* worker processes.  The
    gate gives interactive computations strict precedence at cell
    granularity: the scheduler marks each in-flight interactive
    computation with :meth:`interactive_begin` / :meth:`interactive_end`,
    and the job runner calls :meth:`batch_turn` before starting every
    batch cell — blocking while any interactive computation is running,
    up to an anti-starvation deadline (``max_batch_wait_s``) after which
    the batch cell proceeds anyway so a saturating interactive stream
    cannot stall a job forever.

    Cache hits and coalesced followers never touch the gate (they do no
    pool work), so a hot serving mix barely delays batch progress.
    """

    def __init__(self, max_batch_wait_s: float = 2.0):
        self.max_batch_wait_s = max_batch_wait_s
        self._cond = threading.Condition()
        self._active = 0
        self.counters = Counters()

    def interactive_begin(self) -> None:
        with self._cond:
            self._active += 1

    def interactive_end(self) -> None:
        with self._cond:
            self._active -= 1
            if self._active == 0:
                self._cond.notify_all()

    def batch_turn(self) -> bool:
        """Block until no interactive computation is in flight.

        Returns ``True`` when the pool was yielded cleanly, ``False``
        when the anti-starvation deadline expired and the batch cell is
        proceeding alongside interactive traffic.
        """
        deadline = time.monotonic() + self.max_batch_wait_s
        with self._cond:
            if self._active == 0:
                return True
            self.counters.add("batch_waits")
            while self._active > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.counters.add("batch_wait_timeouts")
                    return False
                self._cond.wait(remaining)
            return True

    def gauges(self) -> dict[str, Any]:
        with self._cond:
            active = self._active
        doc: dict[str, Any] = {"interactive_in_flight": active}
        doc.update(self.counters.snapshot())
        return doc


@dataclass(frozen=True)
class SimRequest:
    """One validated simulation request (the body of ``POST /run``).

    The tuple of fields is exactly the argument list of the
    ``run-cell`` worker task, so a request *is* its computation's
    payload; :meth:`key` hashes it (plus the service schema) with the
    same :func:`~repro.resilience.ledger.cell_key` content addressing
    the sweep ledger uses.
    """

    program: str = ""
    #: ``vec`` is the default engine: charged results are bit-identical
    #: to ``hmm`` (enforced by the equivalence suites) and the wall
    #: clock — what a service caller actually waits on — is ~10x better
    #: on delivery-heavy programs
    engine: str = "vec"
    v: int = 64
    mu: int = 8
    f: str = "x^0.5"
    trace: str = "counters"

    _FIELDS = ("engine", "program", "v", "mu", "f", "trace")

    #: worker-task kind this request's computation runs as; request
    #: types carrying a different kind (the DAG front end's
    #: ``run-dag``) duck-type the same surface and flow through the
    #: scheduler unchanged
    task_kind = TASK_KIND

    @classmethod
    def from_json(cls, doc: Any) -> "SimRequest":
        """Build and validate a request from a decoded JSON body.

        Raises :class:`ValueError` with an actionable message on any
        malformed body — the server maps it to a 400.
        """
        if not isinstance(doc, dict):
            raise ValueError(
                f"request body must be a JSON object, got {type(doc).__name__}"
            )
        unknown = sorted(set(doc) - set(cls._FIELDS))
        if unknown:
            raise ValueError(
                f"unknown request field(s) {', '.join(unknown)}; "
                f"expected a subset of: {', '.join(cls._FIELDS)}"
            )
        for required in ("program",):
            if required not in doc:
                raise ValueError(f"request is missing the {required!r} field")
        req = cls(**doc)
        req.validate()
        return req

    def validate(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"try: {', '.join(sorted(ENGINES))}"
            )
        if self.program not in PROGRAMS:
            raise ValueError(
                f"unknown program {self.program!r}; "
                f"try: {', '.join(sorted(PROGRAMS))}"
            )
        if not isinstance(self.v, int) or isinstance(self.v, bool) or self.v < 1:
            raise ValueError(f"v must be a positive integer, got {self.v!r}")
        if not isinstance(self.mu, int) or isinstance(self.mu, bool) or self.mu < 1:
            raise ValueError(f"mu must be a positive integer, got {self.mu!r}")
        if self.trace not in TRACE_LEVELS:
            raise ValueError(
                f"unknown trace level {self.trace!r}; "
                f"expected one of: {', '.join(TRACE_LEVELS)}"
            )
        resolve_access_function(self.f)  # raises on a bad spec

    @property
    def args(self) -> tuple:
        """The ``run-cell`` worker-task argument tuple."""
        return (self.engine, self.program, self.v, self.mu, self.f, self.trace)

    def key(self) -> str:
        """Content-addressed identity of this request's result."""
        return cell_key(
            TASK_KIND, list(self.args), {"schema": SERVICE_SCHEMA}
        )

    def to_json(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in self._FIELDS}


class _Flight:
    """One in-flight computation: the leader computes, followers wait."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None


class Scheduler:
    """Bounded, coalescing dispatcher in front of the engine registry."""

    def __init__(
        self,
        cache,
        parallel: "ParallelConfig | int | None" = 1,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
        gate: "PoolGate | None" = None,
        planner=None,
    ):
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.cache = cache
        self.parallel = resolve_parallel(parallel)
        self.queue_limit = queue_limit
        self.retry_after_s = retry_after_s
        self.gate = gate
        #: optional :class:`~repro.service.planner.Planner` — when set,
        #: cost-aware admission (per-tenant budgets + global predicted-
        #: cost ceiling) becomes the primary gate; ``queue_limit`` stays
        #: on as a slot-count backstop
        self.planner = planner
        self.counters = Counters()
        self._lock = threading.Lock()
        self._inflight: dict[str, _Flight] = {}

    # ------------------------------------------------------------- serving
    def submit(
        self,
        request: SimRequest,
        tenant: str = "default",
        decision=None,
    ) -> tuple[str, Any, str]:
        """Serve one request; returns ``(key, document, served)``.

        ``served`` says which path produced the response: ``"cached"``
        (result cache, including ledger-preloaded entries),
        ``"coalesced"`` (rode another request's computation) or
        ``"computed"`` (this request led a fresh engine invocation).
        Raises :class:`QueueFull` when admission would exceed
        ``queue_limit`` distinct in-flight computations, or its subclass
        ``BudgetExceeded`` when a configured planner sheds the request
        (tenant budget or global predicted-cost ceiling).

        Cache hits and coalesced followers charge no budget — cost-aware
        admission, like slot admission, applies to *work*, not traffic.
        ``decision`` is the server's already-computed
        :class:`~repro.service.planner.PlanDecision` (so planning runs
        once per request); left ``None`` with a planner set, the
        scheduler plans here.
        """
        key = request.key()
        with self._lock:
            cached = self.cache.get(key)
            if cached is not MISSING:
                self.counters.add("served_cached")
                return key, cached, "cached"
            flight = self._inflight.get(key)
            if flight is None:
                if len(self._inflight) >= self.queue_limit:
                    self.counters.add("rejected")
                    raise QueueFull(
                        f"admission queue is full "
                        f"({self.queue_limit} computation(s) in flight)",
                        self.retry_after_s,
                    )
                if self.planner is not None:
                    if decision is None:
                        decision = self.planner.plan(request)
                    # raises BudgetExceeded *before* the flight exists,
                    # so a shed request never occupies a slot
                    try:
                        self.planner.admit(tenant, decision)
                    except QueueFull:
                        self.counters.add("rejected")
                        raise
                flight = self._inflight[key] = _Flight()
                self.counters.add("admitted")
                leader = True
            else:
                leader = False

        if not leader:
            flight.done.wait()
            if flight.error is not None:
                self.counters.add("errors")
                raise flight.error
            self.counters.add("served_coalesced")
            return key, flight.result, "coalesced"

        if self.gate is not None:
            self.gate.interactive_begin()
        started = time.perf_counter()
        try:
            doc = self._compute(request)
        except BaseException as exc:
            flight.error = exc
            self.counters.add("errors")
            raise
        else:
            if decision is not None and decision.cache == "bypass":
                self.counters.add("cache_bypassed")
            else:
                self.cache.put(key, request.task_kind, doc)
            flight.result = doc
            self.counters.add("served_computed")
            return key, doc, "computed"
        finally:
            if self.gate is not None:
                self.gate.interactive_end()
            if self.planner is not None and decision is not None:
                self.planner.complete(
                    decision, time.perf_counter() - started
                )
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()

    # ------------------------------------------------------------ computing
    def _compute(self, request: SimRequest) -> Any:
        """Run the engine, preferring the worker pool when configured.

        The pool path survives worker deaths and deadline overruns via
        the retry policy; any :class:`PoolUnavailable` that escapes it
        (with ``fallback=True``) degrades to the inline path.  Both
        paths execute the identical pure ``run-cell`` task body, so the
        served document does not depend on where it ran.
        """
        cfg = self.parallel
        kind = request.task_kind
        if cfg.enabled:
            pool = shared_pool(cfg.jobs)
            try:
                docs = list(
                    pool.run_ordered(kind, [request.args], policy=cfg.retry)
                )
                return _normalize(docs[0])
            except PoolUnavailable as exc:
                if not cfg.fallback:
                    raise
                warn_fallback_once(
                    f"worker pool unavailable for service requests ({exc}); "
                    f"computing inline"
                )
        from repro.parallel import workers

        return _normalize(workers.TASKS[kind](request.args))

    # ------------------------------------------------------------- metrics
    def gauges(self) -> dict[str, Any]:
        """The ``queue`` section of ``GET /metrics``."""
        with self._lock:
            in_flight = len(self._inflight)
        return {
            "in_flight": in_flight,
            "limit": self.queue_limit,
            "jobs": self.parallel.jobs,
        }


def parse_run_request(doc: Any):
    """Parse one ``/v1/run`` body into its request type.

    The ``kind`` field dispatches: absent or ``"sim"`` is a
    :class:`SimRequest`, ``"dag"`` is a
    :class:`~repro.dag.service.DagRunRequest` (imported lazily — the
    service tier does not pay for the DAG front end until a DAG request
    arrives).  Anything else is a 400-mapped :class:`ValueError`.
    """
    if isinstance(doc, dict) and "kind" in doc:
        kind = doc["kind"]
        if kind == "dag":
            from repro.dag.service import DagRunRequest

            return DagRunRequest.from_json(doc)
        if kind != "sim":
            raise ValueError(
                f"unknown request kind {kind!r}; expected 'sim' or 'dag'"
            )
        doc = {k: v for k, v in doc.items() if k != "kind"}
    return SimRequest.from_json(doc)


def _normalize(doc: dict[str, Any]) -> dict[str, Any]:
    """Canonicalize a fresh ``run-cell`` document for serving.

    Recorded spans (``trace="full"`` runs) are rendered to their JSON
    form under ``"trace"``, then the whole document takes the same JSON
    round-trip the ledger replay path applies — floats survive exactly,
    tuples normalize to lists — so a computed response is
    ``==``-identical to a cached, coalesced or replayed one.
    """
    spans = doc.pop("spans", [])
    doc["trace"] = [
        span.to_json() if isinstance(span, SpanRecord) else span
        for span in spans
    ]
    return json.loads(json.dumps(doc))
