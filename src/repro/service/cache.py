"""Content-addressed LRU result cache for the serving subsystem.

Keys are :func:`~repro.resilience.ledger.cell_key` content hashes —
the same kind + args + context hashing the sweep ledger uses — so a
cached entry is valid for exactly the requests that would compute the
identical result.  Values are the JSON-normalized result documents the
scheduler produces (one ``json.loads(json.dumps(...))`` round-trip
before insertion), so a cache hit serves a document ``==``-identical to
a fresh computation.

Two operational features ride on top of the plain ``OrderedDict`` LRU:

* **observability** — a :class:`~repro.obs.counters.Counters` registry
  (``hits``, ``misses``, ``stores``, ``evictions``, ``preloaded``)
  surfaced by ``GET /metrics``;
* **persistence** — an optional
  :class:`~repro.resilience.ledger.SweepLedger`: every store is also
  appended to the ledger (flush + fsync per entry), and a cache built
  over a resumed ledger preloads the recorded entries, so a warm cache
  survives restarts.  Eviction only trims the in-memory LRU; the
  append-only ledger keeps everything (capacity bounds memory, the
  ledger bounds recomputation).

All methods are thread-safe — the HTTP front end serves from many
handler threads at once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.obs.counters import Counters
from repro.resilience.ledger import MISSING, SweepLedger

__all__ = ["ResultCache"]

#: default in-memory capacity (entries, not bytes — result documents
#: for the bundled programs are a few KB each)
DEFAULT_CAPACITY = 1024


class ResultCache:
    """A bounded, content-addressed, optionally ledger-backed LRU cache."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        ledger: SweepLedger | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.counters = Counters()
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._ledger = ledger
        if ledger is not None:
            # Oldest-first iteration + LRU eviction keeps the *newest*
            # recorded cells when the ledger outgrew the capacity.
            for key, result in ledger.items():
                self._entries[key] = result
                self._entries.move_to_end(key)
                if len(self._entries) > capacity:
                    self._entries.popitem(last=False)
                else:
                    self.counters.add("preloaded")

    # -------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Any:
        """The cached document for ``key``, or :data:`MISSING`.

        A hit refreshes the entry's LRU position.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.counters.add("hits")
                return self._entries[key]
            self.counters.add("misses")
            return MISSING

    def put(self, key: str, kind: str, doc: Any, source: str | None = None) -> None:
        """Insert (or refresh) ``key``; evict LRU entries over capacity.

        With a backing ledger, a key the ledger has not seen yet is also
        appended there (``kind`` is the ledger's task-kind column), so
        the entry survives both eviction and restart.  ``source`` tags
        the store's origin in the counters (e.g. ``"job"`` when a batch
        job warms the interactive cache with its completed cells) —
        ``stores`` always counts, ``stores_<source>`` additionally.
        """
        with self._lock:
            known = key in self._entries
            self._entries[key] = doc
            self._entries.move_to_end(key)
            if not known:
                self.counters.add("stores")
                if source is not None:
                    self.counters.add(f"stores_{source}")
                if self._ledger is not None and key not in self._ledger:
                    self._ledger.record(key, kind, doc)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.counters.add("evictions")

    def keys(self) -> list[str]:
        """Current keys, least- to most-recently used (tests, metrics)."""
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------- metrics
    def gauges(self) -> dict[str, Any]:
        """The ``cache`` section of ``GET /metrics``: counters + gauges."""
        doc: dict[str, Any] = {
            "size": len(self._entries),
            "capacity": self.capacity,
            "persistent": self._ledger is not None,
        }
        doc.update(self.counters.snapshot())
        return doc
