"""Shard processes and their supervisor for the sharded service tier.

A *shard* is the ordinary single-process service
(:class:`~repro.service.server.SimService` behind the ordinary HTTP
handler) run as a child process over its own slice of the key space:
the router (:mod:`repro.service.router`) only sends it the requests
whose content hash it owns, so its private LRU cache and its private
:class:`~repro.resilience.ledger.SweepLedger` (``shard-<i>.ledger``
under the shard directory) stay dense in exactly that slice.  A
restarted shard resumes its ledger and preloads the cache — warm
restarts per shard, not per tier.

The pieces, bottom-up:

* ``python -m repro.service.shard`` (:func:`main`) — the child-process
  entry point.  It binds its port (``--port 0`` on first launch), then
  writes ``shard-<i>.port`` and ``shard-<i>.pid`` *after* binding, so
  the parent's wait-for-portfile doubles as a readiness handshake.  The
  handler hooks :func:`repro.resilience.faults.maybe_exit_shard` after
  every answered POST, so ``REPRO_FAULTS="...,shard_exit=N"`` kills the
  serving process deterministically mid-run (once per shard identity —
  the marker survives, the replacement serves on).
* :class:`ShardSupervisor` — spawns one shard, waits for the
  handshake, and respawns it on the *same* port when it dies (the
  router's address book never changes; the prober re-marks the shard
  alive when the replacement answers).
* :class:`ShardedTier` — the whole tier in one object: N supervisors,
  the router with its prober, the front-door HTTP server on a
  background thread, and a monitor thread doing the respawns.  Tests,
  the loadgen bench and the ``serve --shards N`` CLI all drive this.
* :func:`serve_sharded` — the blocking CLI entry.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import threading
import time

from repro.resilience import faults
from repro.resilience.ledger import SweepLedger
from repro.service.cache import DEFAULT_CAPACITY
from repro.service.planner import (
    DEFAULT_COST_CEILING,
    DEFAULT_TENANT_CAPACITY,
    DEFAULT_TENANT_REFILL_PER_S,
    planner_from_profile,
)
from repro.service.router import (
    Router,
    ShardClient,
    make_router_server,
)
from repro.service.scheduler import DEFAULT_QUEUE_LIMIT
from repro.service.server import (
    DEFAULT_PORT,
    SimService,
    _Handler,
    make_server,
)

__all__ = [
    "ShardSupervisor",
    "ShardedTier",
    "main",
    "serve_sharded",
]

#: how long the parent waits for a shard's portfile handshake
HANDSHAKE_TIMEOUT_S = 15.0

#: monitor-thread poll interval for dead-shard respawns
MONITOR_INTERVAL_S = 0.2


def _shard_paths(shard_dir: str, index: int) -> dict[str, str]:
    base = os.path.join(shard_dir, f"shard-{index}")
    return {
        "ledger": base + ".ledger",
        "port": base + ".port",
        "pid": base + ".pid",
    }


def _write_atomic(path: str, text: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(text)
    os.replace(tmp, path)


class _ShardHandler(_Handler):
    """The service handler plus the deterministic shard-death hook.

    Only answered POSTs (run/batch/jobs traffic) advance the fault
    counter — health probes must not make the death time depend on the
    prober's schedule.
    """

    def _dispatch(self, method: str) -> None:
        super()._dispatch(method)
        if method != "POST":
            return
        server = self.server
        with server.served_lock:  # type: ignore[attr-defined]
            server.served_posts += 1  # type: ignore[attr-defined]
            served = server.served_posts  # type: ignore[attr-defined]
        try:
            self.wfile.flush()  # the triggering response must land first
        except OSError:  # pragma: no cover - client already gone
            pass
        faults.maybe_exit_shard(
            str(server.shard_index),  # type: ignore[attr-defined]
            served,
        )


def _bind_with_retry(
    host: str, port: int, service: SimService, index: int
):
    """``make_server`` with an EADDRINUSE retry loop.

    A respawned shard reuses its predecessor's fixed port; a worker the
    old process forked can hold it for a beat after the kill.
    """
    deadline = time.monotonic() + 10.0
    while True:
        try:
            httpd = make_server(
                host, port, service, handler_cls=_ShardHandler
            )
        except OSError:
            if port == 0 or time.monotonic() >= deadline:
                raise
            time.sleep(0.2)
            continue
        httpd.shard_index = index  # type: ignore[attr-defined]
        httpd.served_lock = threading.Lock()  # type: ignore[attr-defined]
        httpd.served_posts = 0  # type: ignore[attr-defined]
        return httpd


def main(argv: list[str] | None = None) -> int:
    """Child-process entry: serve one shard until killed."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.service.shard",
        description="one shard of the sharded simulation service "
        "(normally launched by the supervisor, not by hand)",
    )
    parser.add_argument("--index", type=int, required=True)
    parser.add_argument("--dir", required=True, help="shard state dir")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--cache-capacity", type=int,
                        default=DEFAULT_CAPACITY)
    parser.add_argument("--queue-limit", type=int,
                        default=DEFAULT_QUEUE_LIMIT)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--jobs-dir", default=None)
    parser.add_argument("--calibration", default=None,
                        help="calibration profile path (enables the "
                        "cost-aware planner on this shard)")
    parser.add_argument("--tenant-capacity", type=float,
                        default=DEFAULT_TENANT_CAPACITY)
    parser.add_argument("--tenant-refill", type=float,
                        default=DEFAULT_TENANT_REFILL_PER_S)
    parser.add_argument("--cost-ceiling", type=float,
                        default=DEFAULT_COST_CEILING)
    args = parser.parse_args(argv)

    os.makedirs(args.dir, exist_ok=True)
    paths = _shard_paths(args.dir, args.index)
    if os.path.exists(paths["ledger"]):
        ledger = SweepLedger.resume(paths["ledger"])
    else:
        ledger = SweepLedger.create(paths["ledger"])
    planner = None
    if args.calibration is not None:
        planner = planner_from_profile(
            args.calibration,
            tenant_capacity=args.tenant_capacity,
            tenant_refill_per_s=args.tenant_refill,
            cost_ceiling=args.cost_ceiling,
            service_jobs=args.jobs,
        )
    service = SimService(
        cache_capacity=args.cache_capacity,
        queue_limit=args.queue_limit,
        jobs=args.jobs,
        ledger=ledger,
        jobs_dir=args.jobs_dir,
        planner=planner,
        identity={
            "index": args.index,
            "pid": os.getpid(),
            "ledger": paths["ledger"],
        },
    )
    httpd = _bind_with_retry(args.host, args.port, service, args.index)
    port = httpd.server_address[1]
    # the handshake: port/pid files appear only once the socket is bound
    _write_atomic(paths["port"], f"{port}\n")
    _write_atomic(paths["pid"], f"{os.getpid()}\n")
    try:
        httpd.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        service.close()
        ledger.close()
    return 0


class ShardSupervisor:
    """Spawn, watch and respawn one shard child process."""

    def __init__(
        self,
        index: int,
        shard_dir: str,
        host: str = "127.0.0.1",
        cache_capacity: int = DEFAULT_CAPACITY,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        jobs: int = 1,
        jobs_dir: str | None = None,
        calibration: str | None = None,
        budget_args: dict[str, float] | None = None,
        env: dict[str, str] | None = None,
    ):
        self.index = index
        self.shard_dir = shard_dir
        self.host = host
        self.cache_capacity = cache_capacity
        self.queue_limit = queue_limit
        self.jobs = jobs
        self.jobs_dir = jobs_dir
        self.calibration = calibration
        #: optional overrides: tenant_capacity / tenant_refill /
        #: cost_ceiling, forwarded to the child as CLI flags
        self.budget_args = dict(budget_args or {})
        self.env = dict(env or {})
        self.port = 0  # pinned after the first successful handshake
        self.proc: subprocess.Popen | None = None
        self.spawns = 0

    def start(self) -> None:
        """Spawn the child and wait for its portfile handshake."""
        paths = _shard_paths(self.shard_dir, self.index)
        os.makedirs(self.shard_dir, exist_ok=True)
        for name in ("port", "pid"):
            try:
                os.unlink(paths[name])
            except FileNotFoundError:
                pass
        cmd = [
            sys.executable, "-c",
            # not "-m repro.service.shard": the package __init__ imports
            # this module, and runpy would warn about re-executing it
            "from repro.service.shard import main; "
            "import sys; sys.exit(main())",
            "--index", str(self.index),
            "--dir", self.shard_dir,
            "--host", self.host,
            "--port", str(self.port),
            "--cache-capacity", str(self.cache_capacity),
            "--queue-limit", str(self.queue_limit),
            "--jobs", str(self.jobs),
        ]
        if self.jobs_dir is not None:
            cmd += ["--jobs-dir", self.jobs_dir]
        if self.calibration is not None:
            cmd += ["--calibration", self.calibration]
            for name in ("tenant_capacity", "tenant_refill", "cost_ceiling"):
                if name in self.budget_args:
                    flag = "--" + name.replace("_", "-")
                    cmd += [flag, str(self.budget_args[name])]
        env = dict(os.environ)
        env.update(self.env)
        self.proc = subprocess.Popen(cmd, env=env)
        self.spawns += 1
        deadline = time.monotonic() + HANDSHAKE_TIMEOUT_S
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"shard {self.index} exited with "
                    f"{self.proc.returncode} before binding"
                )
            try:
                with open(paths["port"]) as fh:
                    text = fh.read().strip()
                if text:
                    self.port = int(text)
                    return
            except FileNotFoundError:
                pass
            time.sleep(0.05)
        raise RuntimeError(
            f"shard {self.index} did not hand back a port within "
            f"{HANDSHAKE_TIMEOUT_S:g}s"
        )

    def is_alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def stop(self) -> None:
        if self.proc is None:
            return
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.proc.kill()
                self.proc.wait(timeout=5)


class ShardedTier:
    """The whole sharded tier behind one URL (context manager).

    >>> tier = ShardedTier(shards=2, cache_capacity=8)
    >>> tier.url.startswith("http://127.0.0.1:")
    True
    >>> tier.close()
    """

    def __init__(
        self,
        shards: int = 2,
        shard_dir: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_capacity: int = DEFAULT_CAPACITY,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        jobs: int = 1,
        jobs_dir: str | None = None,
        calibration: str | None = None,
        budget_args: dict[str, float] | None = None,
        restart: bool = True,
        per_shard_env: dict[int, dict[str, str]] | None = None,
    ):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.shard_dir = shard_dir or tempfile.mkdtemp(
            prefix="repro-shards-"
        )
        self.restart = restart
        self.restarts = 0
        per_shard_env = per_shard_env or {}
        self.supervisors = [
            ShardSupervisor(
                index,
                self.shard_dir,
                host=host,
                cache_capacity=cache_capacity,
                queue_limit=queue_limit,
                jobs=jobs,
                # jobs are pinned to shard 0 by the router; the other
                # shards never see a /v1/jobs request
                jobs_dir=jobs_dir if index == 0 else None,
                calibration=calibration,
                budget_args=budget_args,
                env=per_shard_env.get(index),
            )
            for index in range(shards)
        ]
        started = []
        try:
            for supervisor in self.supervisors:
                supervisor.start()
                started.append(supervisor)
        except Exception:
            for supervisor in started:
                supervisor.stop()
            raise
        # the router's planner only resolves auto engines at the front
        # door (key consistency); budgets live on the shards
        router_planner = (
            planner_from_profile(calibration)
            if calibration is not None else None
        )
        self.router = Router(
            [
                ShardClient(s.index, s.host, s.port)
                for s in self.supervisors
            ],
            planner=router_planner,
        )
        self.httpd = make_router_server(host, port, self.router)
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        self.router.start_prober()
        self._monitor_stop = threading.Event()
        self._monitor = threading.Thread(
            target=self._monitor_loop, daemon=True
        )
        self._monitor.start()

    @property
    def url(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(MONITOR_INTERVAL_S):
            if not self.restart:
                continue
            for supervisor in self.supervisors:
                if supervisor.is_alive():
                    continue
                try:
                    supervisor.start()
                    self.restarts += 1
                except RuntimeError:  # pragma: no cover - retried next tick
                    pass

    def close(self) -> None:
        self._monitor_stop.set()
        self._monitor.join(timeout=5)
        self.router.close()
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join(timeout=5)
        for supervisor in self.supervisors:
            supervisor.stop()

    def __enter__(self) -> "ShardedTier":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_sharded(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    shards: int = 2,
    shard_dir: str = "shards",
    cache_capacity: int = DEFAULT_CAPACITY,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    jobs: int = 1,
    jobs_dir: str | None = None,
    calibration: str | None = None,
    budget_args: dict[str, float] | None = None,
    echo=print,
) -> int:
    """Blocking CLI entry for ``serve --shards N``."""
    tier = ShardedTier(
        shards=shards,
        shard_dir=shard_dir,
        host=host,
        port=port,
        cache_capacity=cache_capacity,
        queue_limit=queue_limit,
        jobs=jobs,
        jobs_dir=jobs_dir,
        calibration=calibration,
        budget_args=budget_args,
    )
    if echo:
        ports = ", ".join(str(s.port) for s in tier.supervisors)
        echo(
            f"repro sharded service on {tier.url}  "
            f"({shards} shard(s) on ports {ports}, state in "
            f"{shard_dir}/, cache {cache_capacity}/shard, "
            f"queue {queue_limit}"
            + (", planner on" if calibration is not None else "")
            + ")"
        )
        echo(
            "routing: consistent hashing on the request content hash; "
            "dead shards respawn on the same port and resume their "
            "ledgers; /v1/jobs is pinned to shard 0"
        )
    try:
        threading.Event().wait()  # serve until interrupted
    except KeyboardInterrupt:
        if echo:
            echo("shutting down the tier")
    finally:
        tier.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - child process entry
    raise SystemExit(main())
