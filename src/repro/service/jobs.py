"""Async jobs: long sweeps as first-class, restartable service objects.

A *job* is a named sweep — the bench matrix, a Fact 1/2 touch sweep, or
an ad-hoc cell list — enqueued over HTTP (``POST /v1/jobs``) and
executed in the background by a :class:`JobRunner` thread, cell by cell,
on the same shared worker pool the interactive ``/v1/run`` traffic
uses.  Three properties make jobs more than a thread wrapper:

* **Checkpointed.**  Every cell is run through
  :func:`~repro.resilience.checkpoint.resume_map` against the job's own
  :class:`~repro.resilience.ledger.SweepLedger`, so completed cells are
  flushed + fsynced the moment they finish.  The final document is
  produced by the *same fold* the CLI sweeps use
  (:func:`~repro.parallel.sweep.touch_sweep`,
  :func:`~repro.parallel.sweep.run_matrix_distributed`,
  :func:`~repro.parallel.sweep.run_cells`) over the fully-populated
  ledger — a resumed job's result is byte-identical to an uninterrupted
  run's.
* **Restartable.**  A job persists a *manifest* (atomic JSON rewrite)
  next to its ledger under the jobs directory.  A restarted server
  scans the directory, re-adopts every job whose manifest is not in a
  terminal state, and resumes it from its ledger checkpoint — a
  mid-job server kill costs at most the cell that was in flight.
* **Polite.**  The runner asks the shared
  :class:`~repro.service.scheduler.PoolGate` for a turn before every
  batch cell, so interactive requests keep strict precedence over batch
  sweeps (with an anti-starvation deadline).  Completed ``cells``-job
  results are also inserted into the interactive result cache, so a job
  warms the cache for the ``/v1/run`` traffic that follows it.

Progress streams out of ``GET /v1/jobs/<id>/events`` as chunked JSON
lines, fed directly from the ledger's append hook
(:meth:`~repro.resilience.ledger.SweepLedger.subscribe`): one event per
checkpointed cell, plus lifecycle events (``adopted``, ``started``,
``done``, ``failed``, ``cancelled``).
"""

from __future__ import annotations

import json
import os
import queue
import threading
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.engines import resolve_access_function
from repro.parallel.config import SERIAL, resolve_parallel
from repro.resilience.checkpoint import resume_map
from repro.resilience.faults import FaultAbort
from repro.resilience.ledger import SweepLedger, cell_key
from repro.service.errors import ApiError
from repro.service.scheduler import (
    SERVICE_SCHEMA,
    PoolGate,
    SimRequest,
    _normalize,
)

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "TERMINAL_STATES",
    "DEFAULT_PRIORITY",
    "JobSpec",
    "Job",
    "JobManager",
]

JOB_KINDS = ("touch", "bench", "cells")

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: default job priority; lower numbers run first
DEFAULT_PRIORITY = 10

#: trace levels a batch cell may request — recorded span objects do not
#: survive the ledger's JSON checkpointing, so traced runs stay on the
#: interactive path
_CELL_TRACE_LEVELS = ("off", "counters")


@dataclass(frozen=True)
class JobSpec:
    """One validated job description (the body of ``POST /v1/jobs``).

    ``kind`` selects the sweep family; exactly the fields of that kind
    may be present:

    * ``touch`` — ``sizes`` (list of positive ints) and ``f`` (access
      function spec): the Fact 1/2 charged-cost sweep, one cell per
      size.  Result document == ``python -m repro touch --sweep``.
    * ``bench`` — ``smoke`` (bool) and ``budget_s`` (positive number):
      the distributed bench matrix, one cell per workload.  Result
      document == ``python -m repro bench --distribute`` (modulo the
      ``resilience`` section's resume counts and the measured wall
      numbers, which are recorded per cell).
    * ``cells`` — ``cells``: a list of ``/v1/run`` request documents
      (validated by :class:`~repro.service.scheduler.SimRequest`), one
      cell each; traces are limited to ``off``/``counters``.  Completed
      cells are inserted into the interactive result cache.
    """

    kind: str
    sizes: tuple[int, ...] = ()
    f: str = "x^0.5"
    smoke: bool = False
    budget_s: float | None = None
    cells: tuple[SimRequest, ...] = field(default_factory=tuple)

    _FIELDS_BY_KIND = {
        "touch": ("sizes", "f"),
        "bench": ("smoke", "budget_s"),
        "cells": ("cells",),
    }

    # ---------------------------------------------------------- validation
    @classmethod
    def from_json(cls, doc: Any) -> "JobSpec":
        """Build and validate a spec; ``ValueError`` on any bad body."""
        if not isinstance(doc, dict):
            raise ValueError(
                f"job body must be a JSON object, got {type(doc).__name__}"
            )
        kind = doc.get("kind")
        if kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {kind!r}; expected one of: "
                f"{', '.join(JOB_KINDS)}"
            )
        allowed = set(cls._FIELDS_BY_KIND[kind]) | {"kind"}
        unknown = sorted(set(doc) - allowed)
        if unknown:
            raise ValueError(
                f"unknown field(s) {', '.join(unknown)} for a {kind!r} job; "
                f"expected a subset of: {', '.join(sorted(allowed))}"
            )
        if kind == "touch":
            sizes = doc.get("sizes")
            if (
                not isinstance(sizes, list)
                or not sizes
                or not all(
                    isinstance(n, int) and not isinstance(n, bool) and n >= 1
                    for n in sizes
                )
            ):
                raise ValueError(
                    '"sizes" must be a non-empty list of positive integers'
                )
            f = doc.get("f", "x^0.5")
            if not isinstance(f, str):
                raise ValueError(f'"f" must be a string, got {f!r}')
            resolve_access_function(f)  # raises on a bad spec
            return cls(kind="touch", sizes=tuple(sizes), f=f)
        if kind == "bench":
            smoke = doc.get("smoke", False)
            if not isinstance(smoke, bool):
                raise ValueError(f'"smoke" must be a boolean, got {smoke!r}')
            budget_s = doc.get("budget_s")
            if budget_s is not None and (
                not isinstance(budget_s, (int, float))
                or isinstance(budget_s, bool)
                or budget_s <= 0
            ):
                raise ValueError(
                    f'"budget_s" must be a positive number, got {budget_s!r}'
                )
            return cls(
                kind="bench",
                smoke=smoke,
                budget_s=None if budget_s is None else float(budget_s),
            )
        cells = doc.get("cells")
        if not isinstance(cells, list) or not cells:
            raise ValueError(
                '"cells" must be a non-empty list of run-request documents'
            )
        requests = []
        for i, cell in enumerate(cells):
            try:
                request = SimRequest.from_json(cell)
            except ValueError as exc:
                raise ValueError(f"cells[{i}]: {exc}") from None
            if request.trace not in _CELL_TRACE_LEVELS:
                raise ValueError(
                    f"cells[{i}]: trace {request.trace!r} is not available "
                    f"in batch jobs (expected one of: "
                    f"{', '.join(_CELL_TRACE_LEVELS)}); use /v1/run for "
                    f"traced runs"
                )
            requests.append(request)
        return cls(kind="cells", cells=tuple(requests))

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": self.kind}
        if self.kind == "touch":
            doc["sizes"] = list(self.sizes)
            doc["f"] = self.f
        elif self.kind == "bench":
            doc["smoke"] = self.smoke
            doc["budget_s"] = self.budget_s
        else:
            doc["cells"] = [request.to_json() for request in self.cells]
        return doc

    # ------------------------------------------------------------ planning
    def plan(self) -> tuple[str, list, dict[str, Any] | None]:
        """``(task kind, per-cell args, cell-key context)`` for this sweep.

        The kinds, argument tuples and contexts are exactly the ones the
        CLI sweeps use, so a job ledger is interchangeable with a
        ``--checkpoint``/``--resume`` ledger of the same sweep.
        """
        if self.kind == "touch":
            return "touch-cost", [(n, self.f) for n in self.sizes], None
        if self.kind == "bench":
            import dataclasses

            from repro.bench import (
                BENCH_SCHEMA,
                DEFAULT_BUDGET_S,
                WORKLOADS,
            )

            budget = self.budget_s if self.budget_s is not None else (
                DEFAULT_BUDGET_S
            )
            args = [
                (dataclasses.asdict(w), budget, self.smoke) for w in WORKLOADS
            ]
            return "bench-workload", args, {"schema": BENCH_SCHEMA, "jobs": 1}
        args = [request.args for request in self.cells]
        return "run-cell", args, {"schema": SERVICE_SCHEMA}

    def fold(self, ledger: SweepLedger) -> Any:
        """Assemble the final document from a fully-populated ledger.

        Delegates to the canonical CLI fold for the sweep family —
        every cell replays from the ledger (nothing recomputes), so the
        document is identical to an uninterrupted run's.
        """
        if self.kind == "touch":
            from repro.parallel.sweep import touch_sweep

            return touch_sweep(
                list(self.sizes), f=self.f, parallel=SERIAL, ledger=ledger
            )
        if self.kind == "bench":
            from repro.parallel.sweep import run_matrix_distributed

            return run_matrix_distributed(
                budget_s=self.budget_s, smoke=self.smoke,
                parallel=SERIAL, ledger=ledger,
            )
        from repro.parallel.sweep import run_cells

        docs, _spans = run_cells(
            [request.args for request in self.cells],
            parallel=SERIAL, ledger=ledger,
            context={"schema": SERVICE_SCHEMA},
        )
        return {"cells": [_normalize(doc) for doc in docs]}


class Job:
    """One job's runtime state (the manifest is its persisted shadow)."""

    def __init__(self, job_id: str, spec: JobSpec, priority: int, seq: int):
        self.id = job_id
        self.spec = spec
        self.priority = priority
        self.seq = seq
        self.state = "queued"
        self.error: str | None = None
        task_kind, args_list, context = spec.plan()
        self.task_kind = task_kind
        self.args_list = args_list
        self.context = context
        self.cells_total = len(args_list)
        self.cells_done = 0
        self.result: Any = None
        self.cancel_requested = False
        self.cond = threading.Condition()
        self.events: list[dict[str, Any]] = []

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def keys(self) -> list[str]:
        return [
            cell_key(self.task_kind, args, self.context)
            for args in self.args_list
        ]

    def status_doc(self) -> dict[str, Any]:
        """The ``GET /v1/jobs/<id>`` document."""
        with self.cond:
            return {
                "id": self.id,
                "kind": self.spec.kind,
                "state": self.state,
                "priority": self.priority,
                "cells_total": self.cells_total,
                "cells_done": self.cells_done,
                "error": self.error,
                "spec": self.spec.to_json(),
            }

    def emit(self, event: dict[str, Any]) -> None:
        with self.cond:
            self.events.append(event)
            self.cond.notify_all()


class JobManager:
    """Owns the jobs directory, the runner thread, and the job registry.

    One manager serves one :class:`~repro.service.server.SimService`.
    Jobs run strictly one at a time (batch work is background work; the
    worker pool's parallelism lives *inside* a cell), ordered by
    ``(priority, submission order)``.
    """

    def __init__(
        self,
        jobs_dir: str,
        parallel: Any = 1,
        gate: PoolGate | None = None,
        cache=None,
    ):
        self.jobs_dir = jobs_dir
        self.parallel = resolve_parallel(parallel)
        self.gate = gate
        self.cache = cache
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._queue: "queue.PriorityQueue[tuple[int, int, str]]" = (
            queue.PriorityQueue()
        )
        self._seq = 0
        self._stopping = False
        self.started_order: list[str] = []  # observability + tests
        os.makedirs(jobs_dir, exist_ok=True)
        self._adopt()
        self._runner = threading.Thread(
            target=self._run_loop, daemon=True, name="repro-job-runner"
        )
        self._runner.start()

    # ------------------------------------------------------------- paths
    def _manifest_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.manifest.json")

    def _ledger_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.ledger")

    def _result_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.result.json")

    def _write_manifest(self, job: Job) -> None:
        """Atomically persist the job's control state (never its result)."""
        doc = {
            "schema": SERVICE_SCHEMA,
            "id": job.id,
            "kind": job.spec.kind,
            "spec": job.spec.to_json(),
            "priority": job.priority,
            "seq": job.seq,
            "state": job.state,
            "cells_total": job.cells_total,
            "cells_done": job.cells_done,
            "error": job.error,
        }
        path = self._manifest_path(job.id)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    # ----------------------------------------------------------- adoption
    def _adopt(self) -> None:
        """Re-register persisted jobs; re-enqueue the incomplete ones.

        A manifest whose state is ``queued`` or ``running`` belonged to
        a server that died mid-job — the job resumes from its ledger
        checkpoint (state folds back to ``queued``).  Terminal jobs stay
        available for ``GET`` (their results are read back lazily).
        """
        adopted = []
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".manifest.json"):
                continue
            try:
                with open(os.path.join(self.jobs_dir, name)) as fh:
                    doc = json.load(fh)
                spec = JobSpec.from_json(doc["spec"])
                job = Job(
                    doc["id"], spec,
                    int(doc.get("priority", DEFAULT_PRIORITY)),
                    int(doc.get("seq", 0)),
                )
            except (OSError, ValueError, KeyError) as exc:
                # mirror the ledger's recovery policy: a corrupt manifest
                # costs its own job, never the server
                import warnings

                warnings.warn(
                    f"skipping corrupt job manifest {name}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            job.state = doc.get("state", "queued")
            job.cells_done = int(doc.get("cells_done", 0))
            job.error = doc.get("error")
            self._jobs[job.id] = job
            self._seq = max(self._seq, job.seq + 1)
            if not job.terminal:
                job.state = "queued"
                job.emit({"event": "adopted", "job": job.id,
                          "cells_done": job.cells_done,
                          "cells_total": job.cells_total})
                adopted.append(job)
        for job in sorted(adopted, key=lambda j: (j.priority, j.seq)):
            self._queue.put((job.priority, job.seq, job.id))

    # ----------------------------------------------------------- frontend
    def submit(self, spec: JobSpec, priority: int = DEFAULT_PRIORITY) -> Job:
        """Persist and enqueue a new job; returns it in state ``queued``."""
        with self._lock:
            job_id = f"job-{uuid.uuid4().hex[:12]}"
            job = Job(job_id, spec, priority, self._seq)
            self._seq += 1
            self._jobs[job_id] = job
        self._write_manifest(job)
        self._queue.put((job.priority, job.seq, job.id))
        return job

    def submit_json(self, body: Any) -> Job:
        """``POST /v1/jobs`` body -> job (priority rides outside the spec)."""
        if not isinstance(body, dict):
            raise ValueError(
                f"job body must be a JSON object, got {type(body).__name__}"
            )
        body = dict(body)
        priority = body.pop("priority", DEFAULT_PRIORITY)
        if (
            not isinstance(priority, int)
            or isinstance(priority, bool)
            or priority < 0
        ):
            raise ValueError(
                f'"priority" must be a non-negative integer, got {priority!r}'
            )
        return self.submit(JobSpec.from_json(body), priority)

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ApiError(404, "not_found", f"no such job {job_id!r}")
        return job

    def list(self) -> list[dict[str, Any]]:
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.seq)
        return [job.status_doc() for job in jobs]

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job (takes effect at a cell edge)."""
        job = self.get(job_id)
        with job.cond:
            if job.terminal:
                raise ApiError(
                    409, "job_finished",
                    f"job {job_id!r} is already {job.state}",
                )
            job.cancel_requested = True
            if job.state == "queued":
                job.state = "cancelled"
                job.events.append({"event": "cancelled", "job": job.id})
                job.cond.notify_all()
        if job.state == "cancelled":
            self._write_manifest(job)
        return job

    def result(self, job_id: str) -> Any:
        """The finished document, or the appropriate envelope error."""
        job = self.get(job_id)
        if job.state == "failed":
            raise ApiError(
                500, "job_failed", job.error or f"job {job_id!r} failed"
            )
        if job.state != "done":
            raise ApiError(
                409, "job_not_finished",
                f"job {job_id!r} is {job.state} "
                f"({job.cells_done}/{job.cells_total} cells)",
            )
        if job.result is None:
            with open(self._result_path(job_id)) as fh:
                job.result = json.load(fh)
        return job.result

    # ------------------------------------------------------------- events
    def stream(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield a snapshot, then every event as it lands, until terminal.

        The per-cell events are fed from the job ledger's append hook;
        the generator drains the backlog first, so a late subscriber
        still sees the full (this-process) history.
        """
        job = self.get(job_id)
        yield {"event": "snapshot", "job": job.id, **job.status_doc()}
        index = 0
        while True:
            with job.cond:
                while index >= len(job.events) and not job.terminal:
                    job.cond.wait(timeout=0.5)
                fresh = job.events[index:]
                index += len(fresh)
                finished = job.terminal and index >= len(job.events)
            for event in fresh:
                yield event
            if finished:
                return

    def gauges(self) -> dict[str, Any]:
        """The ``jobs`` section of ``GET /metrics``."""
        with self._lock:
            states = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        doc: dict[str, Any] = {"enabled": True, "dir": self.jobs_dir}
        doc.update(states)
        if self.gate is not None:
            doc["gate"] = self.gate.gauges()
        return doc

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop the runner at the next cell edge and wait for it.

        Incomplete jobs keep their ``running``/``queued`` manifests and
        ledgers — a manager reopened on the same directory re-adopts
        and finishes them.  (This is also how the in-process loadgen
        driver emulates a mid-job server kill.)
        """
        self._stopping = True
        self._queue.put((-1, -1, ""))  # wake the runner
        self._runner.join(timeout=30)

    # ------------------------------------------------------------- runner
    def _run_loop(self) -> None:
        while not self._stopping:
            try:
                _prio, _seq, job_id = self._queue.get(timeout=0.5)
            except queue.Empty:
                continue
            if self._stopping or not job_id:
                break
            job = self._jobs.get(job_id)
            if job is None or job.state != "queued":
                continue
            try:
                self._run_job(job)
            except FaultAbort:
                # injected mid-job crash: leave the manifest as-is
                # ("running"), exactly like a real kill — a restarted
                # manager re-adopts and resumes from the ledger
                return
            except Exception as exc:  # defensive: a job never kills the loop
                # event + state flip atomically: a streamer woken by the
                # terminal state must already see the terminal event
                with job.cond:
                    job.state = "failed"
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.events.append({"event": "failed", "job": job.id,
                                       "error": job.error})
                    job.cond.notify_all()
                self._write_manifest(job)

    def _run_job(self, job: Job) -> None:
        with job.cond:
            if job.cancel_requested:
                job.state = "cancelled"
                job.events.append({"event": "cancelled", "job": job.id})
                job.cond.notify_all()
            else:
                job.state = "running"
        if job.state == "cancelled":
            self._write_manifest(job)
            return
        self.started_order.append(job.id)
        self._write_manifest(job)
        ledger_path = self._ledger_path(job.id)
        if os.path.exists(ledger_path):
            ledger = SweepLedger.resume(ledger_path)
        else:
            ledger = SweepLedger.create(ledger_path)
        try:
            self._run_cells(job, ledger)
        finally:
            ledger.close()

    def _run_cells(self, job: Job, ledger: SweepLedger) -> None:
        keys = job.keys()
        job.cells_done = sum(1 for key in keys if key in ledger)

        def on_append(key: str, kind: str, result: Any) -> None:
            with job.cond:
                job.cells_done += 1
            job.emit({
                "event": "cell", "job": job.id, "key": key,
                "done": job.cells_done, "total": job.cells_total,
                "replayed": False,
            })

        ledger.subscribe(on_append)
        job.emit({"event": "started", "job": job.id,
                  "cells_done": job.cells_done,
                  "cells_total": job.cells_total})
        for index, args in enumerate(job.args_list):
            if self._stopping:
                return  # manifest stays "running": resumed on re-adopt
            if job.cancel_requested:
                with job.cond:
                    job.state = "cancelled"
                    job.events.append({"event": "cancelled", "job": job.id,
                                       "done": job.cells_done,
                                       "total": job.cells_total})
                    job.cond.notify_all()
                self._write_manifest(job)
                return
            replayed = keys[index] in ledger
            if not replayed and self.gate is not None:
                self.gate.batch_turn()  # interactive traffic goes first
            # one-cell resume_map: ledger lookup, JSON normalization,
            # checkpoint append and fault hooks, all in one place
            resume_map(
                job.task_kind, [args], ledger,
                SERIAL if replayed else self.parallel,
                context=job.context,
            )
            if replayed:
                job.emit({
                    "event": "cell", "job": job.id, "key": keys[index],
                    "done": job.cells_done, "total": job.cells_total,
                    "replayed": True,
                })
        doc = job.spec.fold(ledger)
        result_path = self._result_path(job.id)
        tmp = result_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, result_path)
        self._warm_cache(job, doc)
        with job.cond:
            job.result = doc
            job.state = "done"
            job.events.append({"event": "done", "job": job.id,
                               "cells_done": job.cells_done,
                               "cells_total": job.cells_total})
            job.cond.notify_all()
        self._write_manifest(job)

    def _warm_cache(self, job: Job, doc: Any) -> None:
        """Insert a ``cells`` job's results into the interactive cache.

        The cell documents and content keys are exactly what the
        scheduler would have computed for the same ``/v1/run`` body, so
        subsequent interactive requests are served ``cached``.
        """
        if self.cache is None or job.spec.kind != "cells":
            return
        for request, cell_doc in zip(job.spec.cells, doc["cells"]):
            self.cache.put(request.key(), "run-cell", cell_doc, source="job")
