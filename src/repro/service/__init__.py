"""Simulation-as-a-service: serve engine runs over HTTP.

Every simulation in this package is a *pure function* of
``(program, engine, access function, config)`` — charged model costs are
deterministic and JSON round-trips them exactly.  That makes simulation
results perfectly cacheable and identical in-flight requests perfectly
coalescible, which is what this package exploits to turn the one-shot
CLI into a serving subsystem:

* :mod:`repro.service.cache` — a content-addressed LRU result cache
  keyed by the same ``cell_key`` hashing the sweep ledger uses, with
  hit/miss/eviction counters and optional ledger-backed persistence (a
  warm cache survives restarts);
* :mod:`repro.service.scheduler` — bounded admission, single-flight
  coalescing of identical concurrent requests, and dispatch onto the
  existing :class:`~repro.parallel.pool.WorkerPool` /
  :class:`~repro.resilience.retry.RetryPolicy` machinery so worker
  deaths and timeouts degrade gracefully instead of failing requests;
* :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer``
  front end: ``POST /run``, ``POST /batch``, ``GET /healthz``,
  ``GET /metrics``, with 429 + ``Retry-After`` backpressure;
* :mod:`repro.service.loadgen` — a closed-loop load generator
  (hot/cold key mix, batches) writing
  ``BENCH_service_throughput.json``.

The serving contract mirrors the PR 3/PR 4 re-fold contracts: for a
fixed request, the charged ``time``/``counters`` in the response are
``==``-identical whether the result was computed, coalesced onto
another request's computation, served from the cache, or replayed from
a persisted ledger — at any ``jobs`` value
(``tests/test_service.py`` pins this).
"""

from repro.service.cache import ResultCache
from repro.service.scheduler import (
    SERVICE_SCHEMA,
    QueueFull,
    Scheduler,
    SimRequest,
)
from repro.service.server import ServiceServer, SimService, serve

__all__ = [
    "ResultCache",
    "Scheduler",
    "SimRequest",
    "QueueFull",
    "SERVICE_SCHEMA",
    "SimService",
    "ServiceServer",
    "serve",
]
