"""Simulation-as-a-service: serve engine runs over HTTP.

Every simulation in this package is a *pure function* of
``(program, engine, access function, config)`` — charged model costs are
deterministic and JSON round-trips them exactly.  That makes simulation
results perfectly cacheable and identical in-flight requests perfectly
coalescible, which is what this package exploits to turn the one-shot
CLI into a serving subsystem:

* :mod:`repro.service.cache` — a content-addressed LRU result cache
  keyed by the same ``cell_key`` hashing the sweep ledger uses, with
  hit/miss/eviction counters and optional ledger-backed persistence (a
  warm cache survives restarts);
* :mod:`repro.service.scheduler` — bounded admission, single-flight
  coalescing of identical concurrent requests, dispatch onto the
  existing :class:`~repro.parallel.pool.WorkerPool` /
  :class:`~repro.resilience.retry.RetryPolicy` machinery so worker
  deaths and timeouts degrade gracefully instead of failing requests,
  and the :class:`~repro.service.scheduler.PoolGate` giving interactive
  requests pool precedence over batch jobs;
* :mod:`repro.service.jobs` — the async jobs subsystem: long sweeps
  enqueued over HTTP, checkpointed per cell through the sweep ledger,
  streamed as progress events, and re-adopted (resumed from their
  checkpoints) by a restarted server;
* :mod:`repro.service.errors` — the unified
  ``{"error": {"code", "message", "retry_after_s"}}`` envelope every
  non-2xx response carries;
* :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer``
  front end, all endpoints under ``/v1`` (unprefixed aliases answer
  with a ``Deprecation`` header): ``POST /v1/run``, ``POST /v1/batch``,
  the ``/v1/jobs`` lifecycle, ``GET /v1/healthz``, ``GET /v1/metrics``,
  with 429 + ``Retry-After`` backpressure;
* :mod:`repro.service.loadgen` — a closed-loop load generator
  (hot/cold key mix, batches, a job-mode interference driver) writing
  ``BENCH_service_throughput.json``.

The serving contract mirrors the PR 3/PR 4 re-fold contracts: for a
fixed request, the charged ``time``/``counters`` in the response are
``==``-identical whether the result was computed, coalesced onto
another request's computation, served from the cache, replayed from a
persisted ledger, or produced by a background job — at any ``jobs``
value (``tests/test_service.py`` / ``tests/test_jobs.py`` pin this).
"""

from repro.service.cache import ResultCache
from repro.service.errors import ApiError, error_envelope
from repro.service.jobs import Job, JobManager, JobSpec
from repro.service.scheduler import (
    SERVICE_SCHEMA,
    PoolGate,
    QueueFull,
    Scheduler,
    SimRequest,
)
from repro.service.server import API_VERSION, ServiceServer, SimService, serve

__all__ = [
    "API_VERSION",
    "ApiError",
    "error_envelope",
    "ResultCache",
    "Scheduler",
    "SimRequest",
    "QueueFull",
    "PoolGate",
    "SERVICE_SCHEMA",
    "Job",
    "JobManager",
    "JobSpec",
    "SimService",
    "ServiceServer",
    "serve",
]
