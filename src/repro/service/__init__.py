"""Simulation-as-a-service: serve engine runs over HTTP.

Every simulation in this package is a *pure function* of
``(program, engine, access function, config)`` — charged model costs are
deterministic and JSON round-trips them exactly.  That makes simulation
results perfectly cacheable and identical in-flight requests perfectly
coalescible, which is what this package exploits to turn the one-shot
CLI into a serving subsystem:

* :mod:`repro.service.cache` — a content-addressed LRU result cache
  keyed by the same ``cell_key`` hashing the sweep ledger uses, with
  hit/miss/eviction counters and optional ledger-backed persistence (a
  warm cache survives restarts);
* :mod:`repro.service.scheduler` — bounded admission, single-flight
  coalescing of identical concurrent requests, dispatch onto the
  existing :class:`~repro.parallel.pool.WorkerPool` /
  :class:`~repro.resilience.retry.RetryPolicy` machinery so worker
  deaths and timeouts degrade gracefully instead of failing requests,
  and the :class:`~repro.service.scheduler.PoolGate` giving interactive
  requests pool precedence over batch jobs;
* :mod:`repro.service.jobs` — the async jobs subsystem: long sweeps
  enqueued over HTTP, checkpointed per cell through the sweep ledger,
  streamed as progress events, and re-adopted (resumed from their
  checkpoints) by a restarted server;
* :mod:`repro.service.errors` — the unified
  ``{"error": {"code", "message", "retry_after_s"}}`` envelope every
  non-2xx response carries;
* :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer``
  front end, all endpoints under ``/v1`` (unprefixed aliases answer
  with a ``Deprecation`` header): ``POST /v1/run``, ``POST /v1/batch``,
  the ``/v1/jobs`` lifecycle, ``GET /v1/healthz``, ``GET /v1/metrics``,
  with 429 + ``Retry-After`` backpressure;
* :mod:`repro.service.router` / :mod:`repro.service.shard` — the
  sharded multi-process tier (``serve --shards N``): shard processes
  each running the same :class:`~repro.service.server.SimService` over
  a consistent-hashing slice of the key space with a private
  ledger-backed cache, behind a front-door router with health-probing,
  passive failure detection, deterministic failover and supervisor
  respawns — submachine locality translated into per-shard locality of
  reference;
* :mod:`repro.service.loadgen` — the load generator: closed-loop
  hot/cold phases (``BENCH_service_throughput.json``), a job-mode
  interference driver, and the open-loop (Poisson-arrival)
  sharded-tier bench with p50/p95/p99 + histogram tail-latency phases
  and a shard-kill fault run (``BENCH_service_shard.json``).

The serving contract mirrors the PR 3/PR 4 re-fold contracts: for a
fixed request, the charged ``time``/``counters`` in the response are
``==``-identical whether the result was computed, coalesced onto
another request's computation, served from the cache, replayed from a
persisted ledger, or produced by a background job — at any ``jobs``
value (``tests/test_service.py`` / ``tests/test_jobs.py`` pin this).
"""

from repro.service.cache import ResultCache
from repro.service.errors import ApiError, error_envelope
from repro.service.jobs import Job, JobManager, JobSpec
from repro.service.scheduler import (
    SERVICE_SCHEMA,
    PoolGate,
    QueueFull,
    Scheduler,
    SimRequest,
)
from repro.service.router import HashRing, Router, ShardClient
from repro.service.server import API_VERSION, ServiceServer, SimService, serve
from repro.service.shard import ShardedTier, ShardSupervisor, serve_sharded

__all__ = [
    "API_VERSION",
    "ApiError",
    "error_envelope",
    "ResultCache",
    "Scheduler",
    "SimRequest",
    "QueueFull",
    "PoolGate",
    "SERVICE_SCHEMA",
    "Job",
    "JobManager",
    "JobSpec",
    "SimService",
    "ServiceServer",
    "serve",
    "HashRing",
    "Router",
    "ShardClient",
    "ShardedTier",
    "ShardSupervisor",
    "serve_sharded",
]
