"""The unified error envelope of the ``/v1`` API surface.

Every non-2xx response body has exactly one shape::

    {"error": {"code": <machine-readable>, "message": str,
               "retry_after_s": float | null}}

``code`` is a stable machine-readable identifier (clients branch on it;
``message`` is for humans and may change wording freely), and
``retry_after_s`` is non-null exactly when retrying the identical
request later can succeed (it mirrors the ``Retry-After`` header).
Specific codes may *add* keys next to the base three — today only
``budget_exceeded``, which carries ``predicted_cost``,
``budget_remaining`` and ``scope`` (see ``docs/planner.md``) — but the
base three are always present.

Status-to-code mapping used by the server:

========  ====================  =============================================
status    code                  raised by
========  ====================  =============================================
400       ``bad_request``       request validation (:class:`ValueError`)
400       ``jobs_disabled``     jobs endpoint without a ``--jobs-dir``
400       ``planner_disabled``  ``POST /v1/plan`` without ``--calibration``
404       ``not_found``         unknown endpoint or unknown job id
409       ``job_not_finished``  ``GET .../result`` before the job is done
409       ``job_finished``      ``DELETE`` on an already-terminal job
413       ``payload_too_large`` request body over the byte limit
429       ``queue_full``        slot-count backpressure (has
                                ``retry_after_s``)
429       ``budget_exceeded``   cost-aware admission: tenant budget or the
                                global in-flight predicted-cost ceiling (has
                                ``retry_after_s`` plus ``predicted_cost``,
                                ``budget_remaining``, ``scope``)
500       ``internal``          anything else
500       ``job_failed``        ``GET .../result`` of a failed job
503       ``shard_unavailable`` the sharded tier's router when no shard in a
                                key's failover chain answers (has
                                ``retry_after_s``; the supervisor respawn is
                                sub-second)
========  ====================  =============================================

``tests/test_service.py`` pins the envelope schema; ``loadgen`` parses
it back.
"""

from __future__ import annotations

from typing import Any

__all__ = ["ApiError", "error_envelope"]


def error_envelope(
    code: str,
    message: str,
    retry_after_s: float | None = None,
    **extra: Any,
) -> dict[str, Any]:
    """The one true error body (the three base keys, always; specific
    codes may add documented ``extra`` keys beside them)."""
    body: dict[str, Any] = {
        "code": code,
        "message": message,
        "retry_after_s": retry_after_s,
    }
    body.update(extra)
    return {"error": body}


class ApiError(Exception):
    """An error with a designated HTTP status and envelope code.

    Application code (the jobs subsystem, the service handlers) raises
    this instead of reaching for HTTP concepts piecemeal; the server
    maps it onto one envelope response.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after_s: float | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after_s = retry_after_s

    def to_json(self) -> dict[str, Any]:
        return error_envelope(self.code, str(self), self.retry_after_s)
