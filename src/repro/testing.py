"""Deterministic pseudo-random D-BSP programs, for tests and benchmarks.

The equivalence tests run the *same* program through the direct D-BSP
executor, the HMM simulation, the BT simulation and the Brent
self-simulation and require bit-identical final contexts; the benchmark
harness sweeps such programs to measure simulation slowdowns on
unstructured label profiles.  Programs built here are fully deterministic
functions of their parameters:

* each superstep gets a pseudo-random label;
* every processor mixes its ``ctx["w"]`` word with the payloads received,
  then sends its word to a partner obtained by XOR-ing its intra-cluster
  index with a per-step mask — a bijection, so every processor sends and
  receives exactly one message (h = 1) and the mu-relation cap is never
  exceeded.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.dbsp.cluster import cluster_size, log2_exact
from repro.dbsp.program import ProcView, Program, Superstep

__all__ = ["random_program", "random_label_sequence"]

_MOD = (1 << 31) - 1


def random_label_sequence(
    v: int, n_steps: int, seed: int = 0, bias: str = "uniform"
) -> list[int]:
    """A pseudo-random label sequence.

    ``bias`` selects the profile: ``"uniform"`` over ``0..log v``;
    ``"fine"`` favours deep labels (submachine-local programs);
    ``"coarse"`` favours shallow labels (global programs).
    """
    log_v = log2_exact(v)
    rng = random.Random(seed)
    labels = []
    for _ in range(n_steps):
        if bias == "uniform":
            labels.append(rng.randint(0, log_v))
        elif bias == "fine":
            labels.append(max(rng.randint(0, log_v), rng.randint(0, log_v)))
        elif bias == "coarse":
            labels.append(min(rng.randint(0, log_v), rng.randint(0, log_v)))
        else:
            raise ValueError(f"unknown bias {bias!r}")
    return labels


def random_program(
    v: int,
    n_steps: int = 8,
    mu: int = 8,
    seed: int = 0,
    labels: Sequence[int] | None = None,
    local_work: int = 1,
) -> Program:
    """Build a deterministic pseudo-random program.

    Every superstep routes a 1-relation within its label's clusters and
    mixes the routed words into the receivers' state, so any scheduling
    error in an engine (lost message, wrong delivery round, wrong cluster)
    changes the final contexts.
    """
    log_v = log2_exact(v)
    if labels is None:
        labels = random_label_sequence(v, n_steps, seed=seed)
    rng = random.Random(seed ^ 0x5EED)
    steps = []
    for idx, label in enumerate(labels):
        csize = cluster_size(v, label)
        mask = rng.randrange(csize)
        steps.append(
            Superstep(label, _MixStep(idx, label, mask, local_work),
                      name=f"rand{idx}-l{label}")
        )
    steps.append(Superstep(0, _MixStep(len(labels), 0, 0, local_work),
                           name="rand-final"))

    def make_context(pid: int) -> dict:
        return {"w": (pid * 2654435761 + seed) % _MOD}

    return Program(
        v, mu, steps, make_context=make_context,
        name=f"random(v={v},steps={n_steps},seed={seed})",
    )


class _MixStep:
    """Superstep body: absorb, mix, and route to the XOR partner."""

    __slots__ = ("idx", "label", "mask", "local_work")

    def __init__(self, idx: int, label: int, mask: int, local_work: int):
        self.idx = idx
        self.label = label
        self.mask = mask
        self.local_work = local_work

    def __call__(self, view: ProcView) -> None:
        w = view.ctx["w"]
        for msg in view.inbox:
            w = (w * 31 + msg.payload + msg.src) % _MOD
        # a little deterministic local churn, charged explicitly
        for k in range(self.local_work):
            w = (w * 1103515245 + 12345 + k) % _MOD
        view.ctx["w"] = w
        view.charge(self.local_work)
        csize = view.v >> self.label
        base = view.pid - view.pid % csize
        partner = base + ((view.pid - base) ^ self.mask)
        view.send(partner, (w + self.idx) % _MOD)
